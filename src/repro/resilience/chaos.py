"""End-to-end chaos scenario: prove the guards actually recover.

:func:`run_chaos` drives one seeded scenario through every layer of
the resilience subsystem and checks the recovery claims hold:

1. build a graph + engine + churn stream from the seed;
2. replay under a :class:`~repro.resilience.guards.GuardPolicy` while a
   :class:`~repro.resilience.faults.FaultInjector` corrupts state rows
   (mid-stream), injects structural damage, fires a mid-update fault
   and — on supervised pools — freezes a worker (``SIGSTOP``) so the
   heartbeat deadline must catch it; the guarded replay must *finish*
   and the final :meth:`~repro.bc.engine.DynamicBC.verify` must pass;
3. separately, replay the same stream uninterrupted and
   checkpoint+resume, and require the resumed run to be bit-identical
   (reports, counters, BC scores) to the uninterrupted one;
4. (``workers > 1``) replay a serial twin and a pool twin with a
   worker crash *and* a worker stall armed, and require the pool run
   to stay bit-identical (reports, BC scores, counters) with zero
   permanent serial demotions — the supervision acceptance claim.

Everything derives from ``seed``; the CI chaos job runs a seed matrix
and prints the failing seed so any red run is reproducible with
``python -m repro.cli chaos --seed <seed>``.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.resilience.errors import FaultInjected
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import DETECT, ESCALATE, REPAIR, GuardPolicy
from repro.utils.prng import default_rng


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos scenario."""

    seed: int
    backend: str
    num_events: int
    detections: int = 0
    repairs: int = 0
    escalations: int = 0
    recovered_updates: int = 0
    skipped_events: int = 0
    verify_ok: bool = False
    resume_identical: bool = False
    #: worker-pool supervision totals (zero for serial scenarios)
    workers: int = 1
    worker_kills: int = 0
    hung_detections: int = 0
    respawns: int = 0
    quarantined_chunks: int = 0
    #: did the engine end the scenario demoted to serial for good?
    permanent_serial: bool = False
    #: phase-4 pool-vs-serial differential (vacuously true when the
    #: scenario is serial and the phase is skipped)
    pool_identical: bool = True
    #: injected faults that never resolved: rolled-back updates whose
    #: retry also failed, plus armed pool faults never consumed
    unrecovered_faults: int = 0
    #: supervision events, "action: [level] detail" (drained from the
    #: guard-event log plus any trailing events before engine close)
    health_events: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    injector_log: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.verify_ok
            and self.resume_identical
            and self.pool_identical
            and self.unrecovered_faults == 0
            and not self.failures
        )

    def summary(self) -> str:
        """Human-readable multi-line PASS/FAIL summary (what the CLI
        ``chaos`` subcommand prints)."""
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"chaos seed={self.seed} backend={self.backend} "
            f"events={self.num_events} workers={self.workers}: {status}",
            f"  guard: {self.detections} detections, {self.repairs} repairs, "
            f"{self.escalations} escalations",
            f"  updates: {self.recovered_updates} recovered after rollback, "
            f"{self.skipped_events} skipped, "
            f"{self.unrecovered_faults} unrecovered",
            f"  final verify: {'ok' if self.verify_ok else 'FAILED'}",
            f"  checkpoint resume bit-identical: "
            f"{'yes' if self.resume_identical else 'NO'}",
        ]
        if self.workers > 1:
            lines.append(
                f"  supervision: {self.worker_kills} kills, "
                f"{self.hung_detections} hung detected, "
                f"{self.respawns} respawns, "
                f"{self.quarantined_chunks} quarantined"
            )
            lines.append(
                f"  pool run bit-identical to serial: "
                f"{'yes' if self.pool_identical else 'NO'}; "
                f"permanent serial demotion: "
                f"{'YES' if self.permanent_serial else 'no'}"
            )
        for f in self.failures:
            lines.append(f"  failure: {f}")
        return "\n".join(lines)


def reports_identical(a, b) -> bool:
    """Field-by-field report equality, excluding wall-clock time (the
    one field that legitimately differs between two runs)."""
    return (
        a.edge == b.edge
        and a.operation == b.operation
        and np.array_equal(a.cases, b.cases)
        and np.array_equal(a.per_source_seconds, b.per_source_seconds)
        and a.simulated_seconds == b.simulated_seconds
        and np.array_equal(a.touched, b.touched)
        and a.counters == b.counters
        and a.stats == b.stats
        and a.stage_seconds == b.stage_seconds
    )


def _build(seed: int, num_events: int, backend: str, workers: int = 1):
    from repro.bc.engine import DynamicBC
    from repro.graph import generators as gen
    from repro.graph.stream import EdgeStream
    from repro.parallel.supervisor import SupervisorPolicy

    graph = gen.erdos_renyi(48, 110, seed=seed)
    stream = EdgeStream.churn(graph, num_events, delete_fraction=0.35,
                              seed=seed + 1)
    # A fast heartbeat/backoff keeps stall detection (~2x the interval)
    # from dominating a CI chaos run; semantics are interval-invariant.
    policy = SupervisorPolicy(heartbeat_interval=0.1, backoff_base=0.02,
                              backoff_max=0.2)
    engine = DynamicBC.from_graph(graph, num_sources=8, seed=seed + 2,
                                  backend=backend, workers=workers,
                                  supervisor_policy=policy)
    return graph, stream, engine


def _supervised_pool(engine):
    """The engine's :class:`SupervisedPool`, or ``None`` (serial engine,
    legacy pool, or platform without shared memory)."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        pool = getattr(engine, "_ensure_pool", lambda: None)()
    return pool if pool is not None and hasattr(pool, "arm_stall") else None


def _harvest_supervision(report: ChaosReport, engine, *replays) -> None:
    """Fold *engine*'s supervision activity into *report*: counters
    from :meth:`DynamicBC.health_report`, plus every health event the
    replays folded into their guard logs (and any trailing ones not
    yet drained), plus armed-but-never-consumed pool faults."""
    from repro.resilience.guards import HEALTH

    for res in replays:
        for e in res.guard_events:
            if e.action == HEALTH:
                report.health_events.append(f"{e.kind}: {e.detail}")
    drain = getattr(engine, "drain_health_events", None)
    if drain is not None:
        for ev in drain():
            report.health_events.append(
                f"{ev.action}: [{ev.level}] {ev.detail}"
            )
    hr = engine.health_report() if hasattr(engine, "health_report") else {}
    report.worker_kills += int(hr.get("kills", 0))
    report.hung_detections += int(hr.get("hung", 0))
    report.respawns += int(hr.get("respawns", 0))
    report.quarantined_chunks += int(hr.get("quarantined", 0))
    if report.workers > 1 and (
        hr.get("parallel_disabled") or hr.get("level") == "serial"
    ):
        report.permanent_serial = True
    pool = getattr(engine, "_pool", None)
    if pool is not None and hasattr(pool, "pending_faults"):
        report.unrecovered_faults += pool.pending_faults()


def run_chaos(
    seed: int = 0,
    num_events: int = 30,
    backend: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    workers: int = 1,
) -> ChaosReport:
    """Run one seeded chaos scenario; see the module docstring.

    ``workers > 1`` runs every engine of the scenario on the
    shared-memory worker pool (``DynamicBC(workers=N)``); since the
    parallel paths are bit-identical to serial, all resilience claims
    — including checkpoint-resume bit-identity — must hold unchanged
    at any worker count (the CI matrix exercises ``--workers 2``).
    """
    from repro.bc.engine import BACKENDS
    from repro.graph.stream import EdgeStream, replay

    rng = default_rng(seed)
    if backend is None:
        backend = str(rng.choice(BACKENDS))
    report = ChaosReport(seed=int(seed), backend=backend,
                         num_events=num_events, workers=int(workers))
    injector = FaultInjector(seed)
    policy = GuardPolicy(check_every=5, num_check_sources=8,
                         repair_budget=6, seed=seed)

    # ------------------------------------------------------------ phase 1
    # Guarded survival under injected faults.
    _, stream, engine = _build(seed, num_events, backend, workers)
    try:
        cut = max(1, num_events // 3)
        first = EdgeStream(stream.events[:cut])
        second = EdgeStream(stream.events[cut:])

        injector.arm_update_fault(engine, after_sources=int(rng.integers(0, 3)))
        res1 = replay(engine, first, guard=policy)
        # Mid-stream bit-rot: drifted rows plus (on some seeds) structural
        # damage that must escalate to a full recompute.
        injector.corrupt_row(engine)
        injector.corrupt_row(engine)
        if bool(rng.integers(0, 2)):
            injector.corrupt_structural(engine)
        # Mid-stream hang: on a supervised pool a worker SIGSTOPs
        # itself, so the rest of the replay must survive a heartbeat
        # detection + SIGKILL + respawn cycle too.
        if _supervised_pool(engine) is not None:
            injector.arm_update_stall(engine)
        res2 = replay(engine, second, guard=policy)

        # Final sweep: the cadence rarely lands exactly on the last event,
        # so close the stream with one explicit full check.
        from repro.resilience.guards import Guard

        closing = Guard(engine, policy)
        closing.check(num_events)

        all_guard_events = list(res1.guard_events) + list(res2.guard_events) \
            + list(closing.events)
        report.detections = sum(
            1 for e in all_guard_events if e.action == DETECT
        )
        report.repairs = sum(1 for e in all_guard_events if e.action == REPAIR)
        report.escalations = sum(
            1 for e in all_guard_events if e.action == ESCALATE
        )
        for res in (res1, res2):
            report.recovered_updates += len(res.recovered)
            report.skipped_events += len(res.skipped)
            report.unrecovered_faults += sum(
                1 for s in res.skipped
                if s.reason.startswith("update-error")
            )
        _harvest_supervision(report, engine, res1, res2)
        try:
            engine.verify()
            report.verify_ok = True
        except AssertionError as exc:
            report.failures.append(f"final verify failed: {exc}")
        if report.detections and not (report.repairs or report.escalations):
            report.failures.append("guard detected corruption but never acted")
    finally:
        engine.close()

    # ------------------------------------------------------------ phase 2
    # Checkpoint/resume bit-identity on an uninterrupted twin.
    def _check_resume(ckpt_dir: str) -> None:
        _, stream2, eng_full = _build(seed, num_events, backend, workers)
        _, stream3, eng_ckpt = _build(seed, num_events, backend, workers)
        _, stream4, eng_res = _build(seed, num_events, backend, workers)
        try:
            full = replay(eng_full, stream2)

            every = max(2, num_events // 4)
            res_ckpt = replay(eng_ckpt, stream3, checkpoint_every=every,
                              checkpoint_dir=ckpt_dir)
            if not res_ckpt.checkpoints:
                report.failures.append(
                    "checkpointed replay wrote no checkpoints"
                )
                return
            # "Crash" after the second checkpoint and resume from it.
            resume_path = res_ckpt.checkpoints[
                min(1, len(res_ckpt.checkpoints) - 1)
            ]
            resumed = replay(eng_res, stream4, resume_from=resume_path)

            # start_index counts stream events, reports only applied
            # ones; the resumed run must reproduce exactly the trailing
            # reports.
            tail = full.reports[len(full.reports) - len(resumed.reports):]
            mismatches = [
                j for j, (x, y) in enumerate(zip(tail, resumed.reports))
                if not reports_identical(x, y)
            ]
            if mismatches:
                report.failures.append(
                    f"resumed reports differ at positions {mismatches[:3]}"
                )
            if not np.array_equal(eng_full.bc_scores, eng_res.bc_scores):
                report.failures.append("resumed BC scores differ")
            if eng_full.counters != eng_res.counters:
                report.failures.append("resumed counters differ")
            if full.simulated_seconds != resumed.simulated_seconds:
                report.failures.append(
                    "resumed simulated_seconds differ: "
                    f"{full.simulated_seconds!r} vs {resumed.simulated_seconds!r}"
                )
            if not report.failures:
                report.resume_identical = True
        finally:
            eng_full.close()
            eng_ckpt.close()
            eng_res.close()

    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        _check_resume(checkpoint_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            _check_resume(tmp)

    # ------------------------------------------------------------ phase 3
    # Pool-fault differential: a crash AND a stall hit the pool twin,
    # yet its replay must stay bit-identical to the serial twin with
    # zero permanent serial demotions (the supervision headline claim).
    if workers > 1:
        _, stream_s, eng_s = _build(seed, num_events, backend, workers=1)
        _, stream_p, eng_p = _build(seed, num_events, backend, workers)
        try:
            pool = _supervised_pool(eng_p)
            if pool is not None:
                # Round 1 of the first dispatched update crashes the
                # chunk's worker; the retry round stalls it (SIGSTOP).
                # Two strikes quarantine the chunk, so one armed pair
                # walks the whole recovery path: death detection, hung
                # detection + SIGKILL, respawn, quarantine, in-parent
                # serial retry.
                pool.arm_crash()
                pool.arm_stall(rounds=2)
                injector.log.append(
                    "phase3 armed pool crash + stall (differential)"
                )
            rs = replay(eng_s, stream_s)
            rp = replay(eng_p, stream_p)
            mismatched = len(rs.reports) != len(rp.reports) or any(
                not reports_identical(x, y)
                for x, y in zip(rs.reports, rp.reports)
            )
            if mismatched:
                report.pool_identical = False
                report.failures.append(
                    "pool-fault differential: reports differ from serial"
                )
            if not np.array_equal(eng_s.bc_scores, eng_p.bc_scores):
                report.pool_identical = False
                report.failures.append(
                    "pool-fault differential: BC scores differ from serial"
                )
            if eng_s.counters != eng_p.counters:
                report.pool_identical = False
                report.failures.append(
                    "pool-fault differential: counters differ from serial"
                )
            _harvest_supervision(report, eng_p, rp)
            if report.permanent_serial:
                report.failures.append(
                    "pool was permanently demoted to serial although the "
                    "faults stopped within the respawn budget"
                )
        finally:
            eng_s.close()
            eng_p.close()

    report.injector_log = list(injector.log)
    return report
