"""Kill -9 crash-recovery drills for the durable BC service.

A drill is the durability contract executed end to end, the way an
operator would actually hit it:

1. spawn a real ``python -m repro.cli serve`` subprocess with a
   journal, checkpoints and a flushed ``ack <seq>`` line per durably
   acknowledged write;
2. SIGKILL it at a seed-derived moment — no atexit handlers, no
   final sync, exactly what a power cut or OOM kill leaves behind;
3. recover in-process (newest valid checkpoint + journal tail replay,
   the same :class:`~repro.service.core.ServiceCore` path ``repro.cli
   recover`` uses);
4. differentially check the recovered state against a *no-crash
   oracle*: a plain :func:`~repro.graph.stream.replay` of the exact
   write prefix the journal preserved must match bit for bit — BC
   scores, per-source state rows, counters, and the per-event report
   stream;
5. assert the RPO-zero claim: every write acknowledged before the
   kill (the observer's last ``ack`` line) is inside the recovered
   watermark — an acked event is never lost;
6. optionally restart serving from the recovered state (``kills > 1``
   repeats 1-5 on the remaining workload) and finally complete the
   stream in-process, checking the end state against the full oracle.

Everything is seeded: the workload, the kill moment, the engine's
source sample.  A failing drill prints its reproduction line, and the
CI ``crash-drill`` job runs a seed matrix and uploads the journal,
checkpoints and drill log of any failure.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.stream import EdgeEvent, EdgeStream, replay
from repro.utils.atomicio import atomic_write
from repro.utils.prng import default_rng

#: drill engine/graph shape — small enough to crash-loop in CI, big
#: enough that a kill lands mid-apply with work in every queue
DRILL_GRAPH = "small"
DRILL_SCALE = 0.5
DRILL_SOURCES = 16
#: serve-subprocess knobs: small batches and an aggressive group
#: commit so acks flow continuously while the kill timer runs
DRILL_MAX_BATCH = 8
DRILL_CHECKPOINT_EVERY = 25
DRILL_CHECKPOINT_KEEP = 3
DRILL_FSYNC_EVERY = 8
#: wait at most this long for a spawned/killed process to be reaped
PROC_TIMEOUT = 120.0


@dataclass
class DrillReport:
    """Outcome of one seeded crash drill (one or more kill cycles)."""

    seed: int
    ops: int
    kills: int
    ok: bool = True
    failures: List[str] = field(default_factory=list)
    #: one record per kill/recover cycle plus the completion phase
    timeline: List[Dict] = field(default_factory=list)
    #: where the journal/checkpoints/logs live (kept on failure)
    artifacts_dir: Optional[str] = None
    total_writes: int = 0
    final_watermark: int = 0

    def fail(self, message: str) -> None:
        """Record a failed check; the drill as a whole becomes not-ok."""
        self.ok = False
        self.failures.append(message)

    def note(self, phase: str, **detail) -> None:
        """Append a timeline record for *phase* (spawned/killed/...)."""
        entry = {"record": "drill", "phase": phase}
        entry.update(detail)
        self.timeline.append(entry)

    def header(self) -> Dict:
        """JSON-ready header record for the drill log."""
        return {
            "record": "drill-report", "seed": self.seed, "ops": self.ops,
            "kills": self.kills, "ok": self.ok,
            "total_writes": self.total_writes,
            "final_watermark": self.final_watermark,
            "failures": self.failures,
            "artifacts_dir": self.artifacts_dir,
        }

    def summary(self) -> str:
        """Human-readable multi-line account of the drill outcome."""
        cycles = [t for t in self.timeline if t["phase"] == "recovered"]
        lines = [
            f"crash drill seed {self.seed}: "
            f"{'OK' if self.ok else 'FAILED'} "
            f"({len(cycles)} recovery cycle(s), "
            f"{self.total_writes} writes, final watermark "
            f"{self.final_watermark})"
        ]
        for t in self.timeline:
            if t["phase"] == "killed":
                lines.append(
                    f"  kill -9 after {t['after_seconds']:.2f}s "
                    f"(last ack {t['last_ack']})"
                )
            elif t["phase"] == "recovered":
                lines.append(
                    f"  recovered to watermark {t['watermark']} "
                    f"({t['wal_replayed']} journal records replayed, "
                    f"torn tail: {t['torn_tail']})"
                )
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


def _make_graph(seed: int):
    from repro.graph.suite import make_suite_graph

    return make_suite_graph(DRILL_GRAPH, scale=DRILL_SCALE,
                            seed=seed).graph


def _make_engine(graph, seed: int):
    from repro.bc.engine import DynamicBC

    return DynamicBC.from_graph(graph, num_sources=DRILL_SOURCES,
                                seed=seed)


def _serve_argv(workload_path: str, seed: int, pace: float,
                wal_dir: str, ckpt_dir: str, resume: bool) -> List[str]:
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--workload", workload_path,
        "--graph", DRILL_GRAPH, "--scale", str(DRILL_SCALE),
        "--sources", str(DRILL_SOURCES), "--seed", str(seed),
        "--max-batch", str(DRILL_MAX_BATCH), "--pace", str(pace),
        "--wal", wal_dir,
        "--checkpoint-every", str(DRILL_CHECKPOINT_EVERY),
        "--checkpoint-dir", ckpt_dir,
        "--checkpoint-keep", str(DRILL_CHECKPOINT_KEEP),
        "--fsync-every", str(DRILL_FSYNC_EVERY),
        "--ack-log", "-",
    ]
    if resume:
        argv += ["--resume-from", ckpt_dir]
    return argv


def _spawn_serve(argv: List[str]):
    """Start the serve subprocess with a line-buffered stdout pipe and
    a reader thread tracking the last acknowledged sequence number."""
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, bufsize=1, env=env,
    )
    state = {"last_ack": -1, "lines": []}
    lock = threading.Lock()

    def _reader() -> None:
        for line in proc.stdout:
            line = line.rstrip("\n")
            with lock:
                state["lines"].append(line)
                if line.startswith("ack "):
                    try:
                        state["last_ack"] = int(line.split()[1])
                    except (IndexError, ValueError):
                        pass
        proc.stdout.close()

    thread = threading.Thread(target=_reader, daemon=True)
    thread.start()
    return proc, state, lock, thread


def _recover(graph, seed: int, wal_dir: str, ckpt_dir: str):
    """The exact recovery path ``repro.cli recover`` takes: newest
    valid checkpoint (if any) + journal tail replay."""
    from repro.resilience.checkpoint import find_checkpoints
    from repro.resilience.wal import WriteAheadLog
    from repro.service.core import ServiceCore

    engine = _make_engine(graph, seed)
    wal = WriteAheadLog(wal_dir)
    resume = None
    if os.path.isdir(ckpt_dir) and find_checkpoints(ckpt_dir):
        resume = ckpt_dir
    core = ServiceCore(
        engine, checkpoint_every=DRILL_CHECKPOINT_EVERY,
        checkpoint_dir=ckpt_dir, checkpoint_keep=DRILL_CHECKPOINT_KEEP,
        resume_from=resume, wal=wal,
    )
    return engine, core, wal


def _check_against_oracle(report: DrillReport, graph, seed: int,
                          engine, core, writes: List[EdgeEvent],
                          label: str) -> None:
    """Bit-identity between a recovered core and a no-crash replay of
    the write prefix its watermark claims."""
    from repro.resilience.chaos import reports_identical

    watermark = core.watermark
    oracle = _make_engine(graph, seed)
    try:
        oracle_result = replay(oracle, EdgeStream(writes[:watermark]))
        if not np.array_equal(engine.bc_scores, oracle.bc_scores):
            report.fail(f"{label}: BC scores diverge from the no-crash "
                        f"oracle at watermark {watermark}")
        for name in ("sources", "d", "sigma", "delta"):
            if not np.array_equal(getattr(engine.state, name),
                                  getattr(oracle.state, name)):
                report.fail(f"{label}: state array {name!r} diverges "
                            f"at watermark {watermark}")
        if engine.counters != oracle.counters:
            report.fail(f"{label}: engine counters diverge "
                        f"({engine.counters} != {oracle.counters})")
        if core.applied_total != len(oracle_result.reports):
            report.fail(
                f"{label}: applied_total {core.applied_total} != oracle "
                f"{len(oracle_result.reports)} at watermark {watermark}")
        else:
            prior = core.applied_total - len(core.result.reports)
            for mine, theirs in zip(core.result.reports,
                                    oracle_result.reports[prior:]):
                if not reports_identical(mine, theirs):
                    report.fail(f"{label}: update report at index "
                                f"{theirs.event_index} diverges")
                    break
    finally:
        oracle.close()


def _remaining_workload(workload, watermark: int):
    """The workload suffix a restarted service still has to serve:
    drop every op up to and including the *watermark*-th write (reads
    in that prefix were answered by the dead process)."""
    from repro.service.loadgen import Workload

    seen_writes = 0
    rest = []
    for op in workload.ops:
        if seen_writes < watermark:
            if isinstance(op, EdgeEvent):
                seen_writes += 1
            continue
        rest.append(op)
    return Workload(profile=workload.profile,
                    num_vertices=workload.num_vertices,
                    seed=workload.seed, ops=rest)


def run_drill(
    seed: int = 0,
    *,
    ops: int = 200,
    kills: int = 1,
    artifacts_dir: Optional[str] = None,
    wall_target: float = 6.0,
    kill_window: Tuple[float, float] = (0.8, 4.8),
) -> DrillReport:
    """Run one seeded crash drill; see the module docstring for the
    protocol.  Artifacts are kept when *artifacts_dir* is given or the
    drill fails; a passing drill on a temp dir cleans up after itself.
    """
    from repro.service.loadgen import generate_workload

    report = DrillReport(seed=seed, ops=ops, kills=kills)
    keep_artifacts = artifacts_dir is not None
    root = (os.path.abspath(artifacts_dir) if artifacts_dir is not None
            else tempfile.mkdtemp(prefix=f"bc-drill-{seed}-"))
    os.makedirs(root, exist_ok=True)
    report.artifacts_dir = root
    wal_dir = os.path.join(root, "wal")
    ckpt_dir = os.path.join(root, "ckpts")
    rng = default_rng(seed ^ 0xD111)

    graph = _make_graph(seed)
    workload = generate_workload(graph, "steady", ops,
                                 read_fraction=0.4, seed=seed + 1)
    writes = workload.edge_stream().events
    report.total_writes = len(writes)
    span = workload.ops[-1].time - workload.ops[0].time if workload.ops else 0.0
    pace = wall_target / span if span > 0 else 0.0

    watermark = 0
    engine = core = None
    try:
        for cycle in range(kills):
            remaining = _remaining_workload(workload, watermark)
            wl_path = os.path.join(root, f"workload-{cycle}.jsonl")
            remaining.save(wl_path)
            # Resume from checkpoints when any exist; otherwise the
            # restarted service rebuilds purely from the journal (its
            # own startup tail replay) — both are legitimate restarts.
            from repro.resilience.checkpoint import find_checkpoints

            resume = (os.path.isdir(ckpt_dir)
                      and bool(find_checkpoints(ckpt_dir)))
            argv = _serve_argv(wl_path, seed, pace, wal_dir, ckpt_dir,
                               resume=resume)
            proc, state, lock, thread = _spawn_serve(argv)
            delay = kill_window[0] + float(rng.random()) * (
                kill_window[1] - kill_window[0])
            report.note("spawned", cycle=cycle, pid=proc.pid,
                        kill_delay=round(delay, 3), resume=resume)
            started = time.monotonic()
            while (time.monotonic() - started < delay
                   and proc.poll() is None):
                time.sleep(0.02)
            completed_early = proc.poll() is not None
            if not completed_early:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=PROC_TIMEOUT)
            thread.join(timeout=PROC_TIMEOUT)
            with lock:
                last_ack = state["last_ack"]
                log_lines = list(state["lines"])
            with atomic_write(os.path.join(root, f"serve-{cycle}.log")) as fh:
                fh.write("\n".join(log_lines) + "\n")
            if completed_early:
                report.note("completed-before-kill", cycle=cycle,
                            last_ack=last_ack,
                            returncode=proc.returncode)
            else:
                report.note("killed", cycle=cycle, last_ack=last_ack,
                            after_seconds=time.monotonic() - started)

            if engine is not None:
                engine.close()
            engine, core, wal = _recover(graph, seed, wal_dir, ckpt_dir)
            wal.close()
            watermark = core.watermark
            report.note(
                "recovered", cycle=cycle, watermark=watermark,
                wal_replayed=core.wal_replayed,
                resumed_from=core.result.resumed_from,
                torn_tail=wal.scan.torn_path is not None,
                torn_bytes=wal.scan.torn_bytes,
            )
            # RPO zero: every acknowledged write survived the kill.
            if last_ack >= 0 and watermark < last_ack + 1:
                report.fail(
                    f"cycle {cycle}: acked event lost — last ack "
                    f"{last_ack} but recovered watermark {watermark}")
            _check_against_oracle(report, graph, seed, engine, core,
                                  writes, f"cycle {cycle}")

        # Completion phase: finish the stream on the recovered state;
        # the end state must equal a run that never crashed at all.
        if core is not None and watermark < len(writes):
            core.apply_batch(writes[watermark:])
            watermark = core.watermark
        report.final_watermark = watermark
        if watermark != len(writes):
            report.fail(f"completion: final watermark {watermark} != "
                        f"total writes {len(writes)}")
        if core is not None:
            _check_against_oracle(report, graph, seed, engine, core,
                                  writes, "completion")
        report.note("completed", watermark=watermark)
    finally:
        if engine is not None:
            engine.close()
    if report.ok and not keep_artifacts:
        shutil.rmtree(root, ignore_errors=True)
        report.artifacts_dir = None
    return report


# ----------------------------------------------------------------------
# failover drill: kill the primary, promote the hot standby
# ----------------------------------------------------------------------

@dataclass
class FailoverReport(DrillReport):
    """Outcome of one seeded kill-the-primary failover drill.

    Extends the crash-drill report with the availability numbers the
    ISSUE's acceptance criteria ask for: the recovery-time objective
    actually measured (SIGKILL to promoted-and-writable) and the
    replication lag observed while the primary was alive.
    """

    last_ack: int = -1
    rto_seconds: float = 0.0
    promote_seconds: float = 0.0
    promoted_epoch: int = 0
    sealed_records: int = 0
    #: acked-but-not-yet-applied-on-replica depth, sampled every poll
    lag_samples: List[int] = field(default_factory=list)

    @property
    def max_lag(self) -> int:
        return max(self.lag_samples) if self.lag_samples else 0

    @property
    def mean_lag(self) -> float:
        if not self.lag_samples:
            return 0.0
        return float(sum(self.lag_samples)) / len(self.lag_samples)

    def header(self) -> Dict:
        head = super().header()
        head.update(
            record="failover-report",
            last_ack=self.last_ack,
            rto_seconds=round(self.rto_seconds, 6),
            promote_seconds=round(self.promote_seconds, 6),
            promoted_epoch=self.promoted_epoch,
            sealed_records=self.sealed_records,
            lag_max=self.max_lag,
            lag_mean=round(self.mean_lag, 3),
            lag_samples=len(self.lag_samples),
        )
        return head

    def summary(self) -> str:
        lines = [
            f"failover drill seed {self.seed}: "
            f"{'OK' if self.ok else 'FAILED'} "
            f"(last ack {self.last_ack}, promoted at epoch "
            f"{self.promoted_epoch} / watermark {self.final_watermark}, "
            f"RTO {self.rto_seconds * 1e3:.1f} ms, lag max {self.max_lag} "
            f"mean {self.mean_lag:.1f} records)"
        ]
        for t in self.timeline:
            if t["phase"] == "killed":
                lines.append(f"  kill -9 after {t['after_seconds']:.2f}s "
                             f"(last ack {t['last_ack']})")
            elif t["phase"] == "promoted":
                lines.append(
                    f"  promoted: epoch {t['epoch']}, watermark "
                    f"{t['watermark']}, {t['sealed_records']} records "
                    f"sealed, RTO {t['rto_seconds'] * 1e3:.1f} ms")
            elif t["phase"] == "fenced":
                lines.append("  deposed primary's post-fencing commit "
                             "refused (split-brain check)")
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


def run_failover_drill(
    seed: int = 0,
    *,
    ops: int = 200,
    artifacts_dir: Optional[str] = None,
    wall_target: float = 6.0,
    kill_window: Tuple[float, float] = (0.8, 4.8),
) -> FailoverReport:
    """Kill the primary under load and fail over to a live standby.

    The availability contract executed end to end:

    1. spawn the durable ``serve`` subprocess (the primary) under a
       seeded workload, acks flowing to the observer;
    2. run a :class:`~repro.service.replication.ReplicaService`
       *in this process*, continuously tailing the primary's journal
       and sampling replication lag (acked sequence vs. replica
       watermark);
    3. SIGKILL the primary at a seed-derived moment and promote the
       replica — fence, seal, own — measuring **RTO** from the kill to
       the moment the promotion is complete;
    4. assert **zero acked-write loss**: every sequence the primary
       ever acked is inside the promoted watermark;
    5. assert the promoted state is **bit-identical** to a no-crash
       oracle replay of the same write prefix;
    6. split-brain check: a writer still holding the old epoch must
       have its next commit refused, with nothing reaching disk;
    7. finish the remaining workload through a real ``BCService``
       wrapped around the promotion — the new primary must *accept
       writes* — and check the end state against the full oracle.
    """
    import asyncio

    from repro.resilience.errors import WalError, WalFencedError
    from repro.resilience.wal import WalTailer, WriteAheadLog, read_fence
    from repro.service.loadgen import generate_workload
    from repro.service.replication import ReplicaService
    from repro.service.service import BCService

    report = FailoverReport(seed=seed, ops=ops, kills=1)
    keep_artifacts = artifacts_dir is not None
    root = (os.path.abspath(artifacts_dir) if artifacts_dir is not None
            else tempfile.mkdtemp(prefix=f"bc-failover-{seed}-"))
    os.makedirs(root, exist_ok=True)
    report.artifacts_dir = root
    wal_dir = os.path.join(root, "wal")
    ckpt_dir = os.path.join(root, "ckpts")
    promoted_ckpts = os.path.join(root, "ckpts-promoted")
    os.makedirs(wal_dir, exist_ok=True)
    rng = default_rng(seed ^ 0xFA11)

    graph = _make_graph(seed)
    workload = generate_workload(graph, "steady", ops,
                                 read_fraction=0.4, seed=seed + 1)
    writes = workload.edge_stream().events
    report.total_writes = len(writes)
    span = workload.ops[-1].time - workload.ops[0].time if workload.ops else 0.0
    pace = wall_target / span if span > 0 else 0.0
    wl_path = os.path.join(root, "workload.jsonl")
    workload.save(wl_path)

    # The standby registers its retention position *before* the primary
    # starts, so journal GC can never outrun it (satellite: GC vs. live
    # tailer).
    replica = ReplicaService(_make_engine(graph, seed), wal_dir,
                             replica_id=f"standby-{seed}")
    old_epoch = read_fence(wal_dir)

    argv = _serve_argv(wl_path, seed, pace, wal_dir, ckpt_dir,
                       resume=False)
    proc, state, lock, thread = _spawn_serve(argv)
    report.note("spawned", pid=proc.pid)

    # Tail continuously on a thread while the primary runs, sampling
    # replication lag as (acked sequence + 1) - replica watermark.
    stop_polling = threading.Event()
    poll_state: Dict = {"error": None}

    def _poll() -> None:
        try:
            while not stop_polling.is_set():
                replica.catch_up()
                with lock:
                    last_ack = state["last_ack"]
                report.lag_samples.append(
                    max(0, last_ack + 1 - replica.watermark))
                time.sleep(0.005)
        except BaseException as exc:  # surfaced as a drill failure
            poll_state["error"] = exc

    poller = threading.Thread(target=_poll, daemon=True)
    poller.start()

    engine = replica.core.engine
    try:
        delay = kill_window[0] + float(rng.random()) * (
            kill_window[1] - kill_window[0])
        started = time.monotonic()
        while (time.monotonic() - started < delay
               and proc.poll() is None):
            time.sleep(0.02)
        completed_early = proc.poll() is not None
        if not completed_early:
            proc.send_signal(signal.SIGKILL)
        killed_at = time.monotonic()
        proc.wait(timeout=PROC_TIMEOUT)
        thread.join(timeout=PROC_TIMEOUT)
        with lock:
            last_ack = state["last_ack"]
            log_lines = list(state["lines"])
        report.last_ack = last_ack
        with atomic_write(os.path.join(root, "serve-primary.log")) as fh:
            fh.write("\n".join(log_lines) + "\n")
        if completed_early:
            report.note("completed-before-kill", last_ack=last_ack,
                        returncode=proc.returncode)
        else:
            report.note("killed", last_ack=last_ack,
                        after_seconds=killed_at - started)

        # --- failover: stop tailing, fence, seal, own ----------------
        stop_polling.set()
        poller.join(timeout=PROC_TIMEOUT)
        if poll_state["error"] is not None:
            report.fail(f"replica tailer failed while the primary ran: "
                        f"{poll_state['error']}")
            return report
        promotion = replica.promote(
            checkpoint_every=DRILL_CHECKPOINT_EVERY,
            checkpoint_dir=promoted_ckpts,
            checkpoint_keep=DRILL_CHECKPOINT_KEEP,
        )
        report.rto_seconds = time.monotonic() - killed_at
        report.promote_seconds = promotion.seconds
        report.promoted_epoch = promotion.epoch
        report.sealed_records = promotion.replayed
        report.note("promoted", epoch=promotion.epoch,
                    watermark=promotion.watermark,
                    sealed_records=promotion.replayed,
                    rto_seconds=report.rto_seconds)

        # Zero acked-write loss: every ack the primary ever emitted is
        # inside the promoted watermark.
        if last_ack >= 0 and promotion.watermark < last_ack + 1:
            report.fail(f"acked event lost in failover — last ack "
                        f"{last_ack} but promoted watermark "
                        f"{promotion.watermark}")
        _check_against_oracle(report, graph, seed, engine,
                              promotion.core, writes, "promotion")

        # Split-brain: the deposed primary (old epoch) must have its
        # next commit refused with nothing reaching disk.
        deposed = WriteAheadLog(wal_dir, epoch=old_epoch)
        deposed.append(writes[0], seq=deposed.next_seq)
        try:
            deposed.sync()
        except WalFencedError:
            report.note("fenced", held_epoch=old_epoch,
                        current_epoch=promotion.epoch)
        except WalError as exc:
            report.fail(f"split-brain: expected WalFencedError, "
                        f"got {exc}")
        else:
            report.fail("split-brain: deposed primary committed past "
                        "the fence")
        probe = WalTailer(wal_dir, start_seq=promotion.watermark)
        leaked = probe.poll()
        if leaked:
            report.fail(f"split-brain: {len(leaked)} record(s) from the "
                        f"deposed primary reached the journal")

        # --- completion: the new primary must accept writes ----------
        async def _complete() -> None:
            service = BCService(
                promotion.core.engine, core=promotion.core,
                wal=promotion.wal, max_batch=DRILL_MAX_BATCH,
                fsync_every=DRILL_FSYNC_EVERY,
            )
            async with service:
                await service.submit_many(writes[promotion.watermark:])
                await service.drain()

        asyncio.run(_complete())
        report.final_watermark = promotion.core.watermark
        if report.final_watermark != len(writes):
            report.fail(f"completion: final watermark "
                        f"{report.final_watermark} != total writes "
                        f"{len(writes)}")
        _check_against_oracle(report, graph, seed, engine,
                              promotion.core, writes, "completion")
        report.note("completed", watermark=report.final_watermark)
    finally:
        stop_polling.set()
        if proc.poll() is None:  # pragma: no cover - defensive
            proc.kill()
            proc.wait(timeout=PROC_TIMEOUT)
        engine.close()
    if report.ok and not keep_artifacts:
        shutil.rmtree(root, ignore_errors=True)
        report.artifacts_dir = None
    return report
