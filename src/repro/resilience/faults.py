"""Deterministic fault injection (the chaos harness).

Guards and transactions are only trustworthy if they are exercised
against the failures they claim to survive.  :class:`FaultInjector` is
a seeded source of exactly the fault classes the resilience subsystem
handles:

* **state-row corruption** — deterministic bit-rot in one source's
  ``d``/``sigma``/``delta`` row (what the guard classifies as
  *row drift* and repairs in place);
* **structural corruption** — non-finite/negative values that make the
  whole state untrustworthy (what the guard escalates on);
* **mid-kernel faults** — a one-shot trap that raises
  :class:`~repro.resilience.errors.FaultInjected` partway through an
  update's per-source loop (what the transactional engine rolls back);
* **journal disk faults** — a seeded ``ENOSPC``/``EIO`` at the
  journal's append, write, or fsync stage (what the durable service
  must answer with a refused ack and read-only degradation, never a
  torn acked record);
* **malformed stream input** — bad CSV rows for
  :meth:`EdgeStream.load`'s validation;
* **file corruption** — a flipped byte to trip the checkpoint
  checksum.

Everything is driven by one seeded generator, so a failing chaos run
is reproducible from its seed alone (the CI job prints it).
"""

from __future__ import annotations

import errno
import os
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import DIST_INF
from repro.resilience.errors import FaultInjected
from repro.utils.prng import SeedLike, default_rng

#: row-corruption flavours
ROW_KINDS = ("d", "sigma", "delta")


class FaultInjector:
    """Seeded chaos harness; every injection is logged."""

    def __init__(self, seed: SeedLike = 0) -> None:
        self.rng = default_rng(seed)
        self.log: List[str] = []

    # ------------------------------------------------------------------
    # State corruption
    # ------------------------------------------------------------------
    def corrupt_row(self, engine, kind: Optional[str] = None) -> Tuple[int, str]:
        """Corrupt one random source row of *engine*'s state.

        The damage stays *structurally valid* (finite, non-negative) so
        a guard must classify it as row drift, not structural
        corruption.  Returns ``(source_index, kind)``.
        """
        st = engine.state
        i = int(self.rng.integers(0, st.num_sources))
        kind = kind if kind is not None else str(self.rng.choice(ROW_KINDS))
        s = int(st.sources[i])
        # Target a vertex reachable from the source but not the source
        # itself, so every flavour is a real, detectable drift.
        reachable = np.flatnonzero(
            (st.d[i] != DIST_INF) & (np.arange(st.num_vertices) != s)
        )
        v = s if reachable.size == 0 else int(self.rng.choice(reachable))
        if kind == "d":
            st.d[i, v] += 1
        elif kind == "sigma":
            st.sigma[i, v] = st.sigma[i, v] * 2.0 + 1.0
        elif kind == "delta":
            st.delta[i, v] += 0.5
        else:
            raise ValueError(f"unknown row-corruption kind {kind!r}")
        self.log.append(f"corrupt_row source_index={i} kind={kind} vertex={v}")
        return i, kind

    def corrupt_structural(self, engine) -> str:
        """Inject structurally-invalid damage (NaN σ or negative σ)."""
        st = engine.state
        i = int(self.rng.integers(0, st.num_sources))
        v = int(self.rng.integers(0, st.num_vertices))
        if bool(self.rng.integers(0, 2)):
            st.sigma[i, v] = np.nan
            detail = f"sigma[{i},{v}]=nan"
        else:
            st.sigma[i, v] = -1.0
            detail = f"sigma[{i},{v}]=-1"
        self.log.append(f"corrupt_structural {detail}")
        return detail

    # ------------------------------------------------------------------
    # Mid-update faults
    # ------------------------------------------------------------------
    def arm_update_fault(self, engine, after_sources: int = 1) -> None:
        """One-shot trap: the engine's next update raises
        :class:`FaultInjected` once *after_sources* per-source
        executions have completed, mid-way through the batch.  The trap
        disarms itself (and restores the engine) when it fires.

        On an engine with a live worker pool (``workers > 1``) the trap
        instead kills the worker that picks up the next update's first
        chunk — the pool-era equivalent of dying mid-batch.  Either
        flavour surfaces as a rolled-back
        :class:`~repro.resilience.errors.UpdateError`, so guards and
        replay recover identically.
        """
        if after_sources < 0:
            raise ValueError(f"after_sources must be >= 0, got {after_sources}")
        pool = getattr(engine, "_ensure_pool", lambda: None)()
        if pool is not None:
            pool.arm_crash()
            self.log.append("arm_update_fault armed worker crash (pool mode)")
            return
        original = engine._run_source
        calls = {"n": 0}
        log = self.log

        def tripwire(*args, **kwargs):
            if calls["n"] >= after_sources:
                engine._run_source = original
                log.append(f"update fault fired after {calls['n']} sources")
                raise FaultInjected(
                    f"injected mid-update fault after {calls['n']} sources"
                )
            calls["n"] += 1
            return original(*args, **kwargs)

        engine._run_source = tripwire
        self.log.append(f"arm_update_fault after_sources={after_sources}")

    def arm_update_stall(self, engine, chunks: int = 1, rounds: int = 1) -> None:
        """One-shot trap: a worker picking up the next update's first
        chunk(s) freezes (``SIGSTOP``) instead of crashing — the hang
        the supervisor's heartbeat deadline must catch and SIGKILL.

        On an engine with a supervised pool this arms the pool's stall
        marks directly.  A legacy (unsupervised) pool has no stall
        detection — a frozen worker would hang the run forever — so the
        trap degrades to a worker *crash*, which that pool does
        contain.  On a serial engine it degrades to the mid-kernel
        :class:`FaultInjected` trap (a serial engine cannot hang
        part-way and keep serving).
        """
        pool = getattr(engine, "_ensure_pool", lambda: None)()
        if pool is not None and hasattr(pool, "arm_stall"):
            pool.arm_stall(chunks=chunks, rounds=rounds)
            self.log.append("arm_update_stall armed worker stall (pool mode)")
            return
        if pool is not None:
            pool.arm_crash()
            self.log.append(
                "arm_update_stall degraded to worker crash (legacy pool)"
            )
            return
        original = engine._run_source
        log = self.log

        def tripwire(*args, **kwargs):
            engine._run_source = original
            log.append("update stall fired (serial tripwire)")
            raise FaultInjected("injected stall-equivalent serial fault")

        engine._run_source = tripwire
        self.log.append("arm_update_stall degraded to serial tripwire")

    # ------------------------------------------------------------------
    # Journal disk faults
    # ------------------------------------------------------------------
    def arm_wal_fault(self, wal, stage: str = "fsync",
                      errno_code: int = errno.ENOSPC,
                      count: int = 1) -> None:
        """Trap: the journal's next *count* visits to *stage* raise
        ``OSError(errno_code)`` — a full disk (ENOSPC) or a dying one
        (EIO) at exactly the byte the durability contract hinges on.

        Stages map to :class:`~repro.resilience.wal.WriteAheadLog`'s
        write path: ``"append"`` fails before the record is even
        buffered (the submitter sees a clean rejection), ``"write"``
        fails mid-commit after some records of the group may already
        be on disk (the torn-tail shape), and ``"fsync"`` fails at the
        durability barrier itself — records written but never made
        durable, the most dangerous moment to lie about an ack.  In
        every case the journal must refuse the ack and latch failed
        (``tests/test_service_replication.py``).  The trap disarms
        itself after *count* firings.
        """
        if stage not in ("append", "write", "fsync"):
            raise ValueError(f"unknown wal fault stage {stage!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        remaining = {"n": int(count)}
        log = self.log

        def trap(point: str) -> None:
            if point != stage or remaining["n"] <= 0:
                return
            remaining["n"] -= 1
            if remaining["n"] == 0:
                wal.fault_hook = None
            log.append(f"wal fault fired at {point} "
                       f"(errno {errno_code})")
            raise OSError(errno_code, os.strerror(errno_code),
                          wal.directory)

        wal.fault_hook = trap
        self.log.append(f"arm_wal_fault stage={stage} "
                        f"errno={errno_code} count={count}")

    # ------------------------------------------------------------------
    # Malformed input / file corruption
    # ------------------------------------------------------------------
    def malformed_stream_rows(self, count: int = 4) -> List[str]:
        """CSV rows that :meth:`EdgeStream.load` must reject with a
        ``path:lineno`` diagnostic (never a raw ``int()`` traceback)."""
        candidates = [
            "1.0,3,4,upsert",  # invalid op
            "1.0,-2,4,insert",  # negative vertex id
            "1.0,a,4,insert",  # non-integer vertex id
            "oops,3,4,delete",  # non-numeric timestamp
            "1.0,3,insert",  # wrong column count
            "1.0,5,5,insert",  # self loop
        ]
        picks = self.rng.choice(len(candidates), size=min(count, len(candidates)),
                                replace=False)
        return [candidates[int(j)] for j in picks]

    def corrupt_file(self, path) -> int:
        """Flip one byte near the middle of *path*; returns the offset."""
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        if not blob:
            raise ValueError(f"{path} is empty")
        offset = len(blob) // 2
        blob[offset] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        self.log.append(f"corrupt_file {path} offset={offset}")
        return offset
