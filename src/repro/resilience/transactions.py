"""Undo journal making one streaming update atomic.

:class:`DynamicBC` mutates four things while applying an update: the
dynamic graph (one edge), the per-source state rows ``d/sigma/delta``
(only for sources with real work — the Case-2/3 minority, Fig. 2), the
shared BC score vector, and the aggregate kernel counters.  The journal
captures exactly those pieces *lazily* — the score vector once per
update (one O(n) memcpy), each state row only if its source is about to
execute — so the common all-Case-1 update pays one vector copy and
nothing else.

On failure the journal restores every captured piece and undoes the
edge mutation, leaving the engine bit-identical to its pre-update
state (see ``tests/test_resilience_transactions.py``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class UpdateTransaction:
    """Rollback journal for one ``insert``/``delete`` update.

    The engine opens one transaction per update *after* the graph
    mutation has been applied, registers each state row just before the
    per-source machinery touches it (:meth:`save_row`), and calls
    :meth:`rollback` if anything raises.
    """

    def __init__(self, engine, u: int, v: int, operation: str) -> None:
        self._engine = engine
        self._u = int(u)
        self._v = int(v)
        self._operation = operation
        self._bc = engine.state.bc.copy()
        self._counters = engine.counters
        self._rows: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        #: index of the source row being executed (for UpdateError)
        self.current_source: int = -1

    def save_row(self, i: int) -> None:
        """Journal source row *i*'s state arrays (idempotent)."""
        self.current_source = i
        if i in self._rows:
            return
        st = self._engine.state
        self._rows[i] = (st.d[i].copy(), st.sigma[i].copy(), st.delta[i].copy())

    def restore_row(self, i: int) -> None:
        """Write source row *i*'s journaled bytes back in place (no-op
        for unjournaled rows) **without** ending the transaction.

        This is the supervisor's chunk-reset primitive: before a
        failed pool round is retried, every pending chunk's rows are
        restored to their pre-update values so the re-execution is
        bit-identical to a first attempt.  The restore writes through
        the live arrays — shared-memory views included — so workers
        see the reset bytes too.
        """
        row = self._rows.get(int(i))
        if row is None:
            return
        d, sigma, delta = row
        st = self._engine.state
        st.d[i] = d
        st.sigma[i] = sigma
        st.delta[i] = delta

    def rollback(self) -> None:
        """Restore graph, journaled rows, BC scores and counters."""
        engine = self._engine
        st = engine.state
        for i, (d, sigma, delta) in self._rows.items():
            st.d[i] = d
            st.sigma[i] = sigma
            st.delta[i] = delta
        st.bc[:] = self._bc
        engine.counters = self._counters
        # Undo the edge mutation last so the snapshot cache is patched
        # back into its pre-update form.
        if self._operation == "insert":
            engine.graph.delete_edge(self._u, self._v)
        else:
            engine.graph.insert_edge(self._u, self._v)
