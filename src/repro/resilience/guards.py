"""Self-healing guards for long-running streams.

A streaming BC service (the ROADMAP north-star; cf. Kourtellis et al.,
*Scalable Online Betweenness Centrality in Evolving Graphs*) cannot
afford either of the naive failure policies: crashing on the first
corrupted row throws away hours of incremental work, while ignoring
corruption silently poisons every future score.  The guard implements
the middle path:

1. **Detect** — on a configurable cadence during replay, recompute a
   random sample of source rows from scratch (the engine's
   ``spot_check`` machinery) and look for structural damage in the
   state arrays.
2. **Classify** — *row drift* (one source's ``d/sigma/delta`` rows
   disagree with a fresh Brandes pass; the graph itself is fine) vs.
   *structural corruption* (non-finite values, negative path counts,
   shape mismatches — the state as a whole can no longer be trusted).
3. **Repair** — drifted rows are rebuilt in place via
   :meth:`DynamicBC.repair_source` (cost: one static source, exactly
   the paper's per-source recompute baseline).
4. **Escalate** — structural corruption, or drift repairs beyond the
   configured budget, trigger a full :meth:`DynamicBC.recompute` (the
   paper's Table-III static baseline — the most expensive but always
   correct fallback).

Every detection/repair/escalation is recorded as a :class:`GuardEvent`
in the :class:`~repro.graph.stream.ReplayResult` so operators can see
what the guard did and when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.graph.csr import DIST_INF
from repro.utils.prng import SeedLike, default_rng

#: failure classes a guard can assign
ROW_DRIFT = "row-drift"
BC_DRIFT = "bc-drift"
STRUCTURAL = "structural"

#: guard actions recorded in replay results
DETECT = "detect"
REPAIR = "repair"
ESCALATE = "escalate"
#: worker-pool supervision events folded into the same log (replay
#: drains :meth:`DynamicBC.drain_health_events` after each event; the
#: GuardEvent's ``kind`` carries the supervisor action, e.g.
#: ``worker-death`` / ``hung-worker`` / ``demote``)
HEALTH = "health"


@dataclass(frozen=True)
class GuardPolicy:
    """Configuration of the self-healing guard.

    Attributes
    ----------
    check_every:
        Run a check after every N-th stream event (``0`` disables
        cadence checks; the guard can still be invoked manually).
    num_check_sources:
        Source rows re-derived from scratch per check (the sampled
        ``spot_check`` width; full verification is O(km)).
    repair_budget:
        Row repairs allowed per replay before drift escalates to a
        full recompute.  Persistent drift means the incremental
        machinery itself is suspect, so patching rows one at a time
        stops being trustworthy.
    atol:
        Absolute tolerance when comparing float rows.
    seed:
        Seed for the row-sampling RNG (checks are deterministic).
    """

    check_every: int = 10
    num_check_sources: int = 2
    repair_budget: int = 8
    atol: float = 1e-6
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.check_every < 0:
            raise ValueError(f"check_every must be >= 0, got {self.check_every}")
        if self.num_check_sources < 1:
            raise ValueError(
                f"num_check_sources must be >= 1, got {self.num_check_sources}"
            )
        if self.repair_budget < 0:
            raise ValueError(f"repair_budget must be >= 0, got {self.repair_budget}")


@dataclass(frozen=True)
class GuardEvent:
    """One guard observation/action during a replay."""

    event_index: int  #: stream position after which the check ran
    action: str  #: detect | repair | escalate
    kind: str  #: row-drift | structural
    source_index: int = -1  #: state row involved (-1 for whole-state)
    detail: str = ""


def structural_issues(engine) -> List[str]:
    """Cheap O(kn) sanity scan of the state arrays.

    Returns human-readable descriptions of every structural problem
    found: wrong shapes vs. the graph, non-finite σ/δ/BC values,
    negative path counts, or distances outside ``[0, DIST_INF]``.
    These can never be produced by a healthy engine, so any hit means
    the state as a whole is untrustworthy.
    """
    st = engine.state
    n = engine.graph.num_vertices
    issues: List[str] = []
    if st.num_vertices != n:
        issues.append(f"state tracks {st.num_vertices} vertices, graph has {n}")
        return issues  # shape mismatch makes the scans below unsafe
    if not np.all(np.isfinite(st.sigma)):
        issues.append("non-finite sigma entries")
    if np.any(st.sigma < 0):
        issues.append("negative sigma entries")
    if not np.all(np.isfinite(st.delta)):
        issues.append("non-finite delta entries")
    if not np.all(np.isfinite(st.bc)):
        issues.append("non-finite bc entries")
    if np.any(st.d < 0) or np.any(st.d > DIST_INF):
        issues.append("distances outside [0, DIST_INF]")
    return issues


@dataclass
class Guard:
    """Stateful guard driving a :class:`GuardPolicy` through a replay."""

    engine: object
    policy: GuardPolicy = field(default_factory=GuardPolicy)

    def __post_init__(self) -> None:
        self._rng = default_rng(self.policy.seed)
        self.repairs_used = 0
        self.events: List[GuardEvent] = []

    # ------------------------------------------------------------------
    def after_event(self, event_index: int) -> None:
        """Cadence hook: run a check when *event_index* hits the policy
        cadence (called by :func:`repro.graph.stream.replay` after each
        processed stream event)."""
        every = self.policy.check_every
        if every and (event_index + 1) % every == 0:
            self.check(event_index)

    def check(self, event_index: int = -1) -> List[GuardEvent]:
        """Run one detection/repair/escalation round; returns the
        events it recorded."""
        before = len(self.events)
        issues = structural_issues(self.engine)
        if issues:
            for issue in issues:
                self._record(event_index, DETECT, STRUCTURAL, detail=issue)
            self._escalate(event_index, STRUCTURAL, "; ".join(issues))
            return self.events[before:]
        drifted = self._sample_drift()
        for i in drifted:
            s = int(self.engine.state.sources[i])
            self._record(event_index, DETECT, ROW_DRIFT, i, f"source {s}")
            if self.repairs_used < self.policy.repair_budget:
                self.engine.repair_source(i)
                self.repairs_used += 1
                self._record(
                    event_index, REPAIR, ROW_DRIFT, i,
                    f"source {s} rebuilt "
                    f"({self.repairs_used}/{self.policy.repair_budget})",
                )
            else:
                self._escalate(
                    event_index, ROW_DRIFT,
                    f"repair budget {self.policy.repair_budget} exhausted",
                )
                return self.events[before:]
        # The bc vector must equal the left-fold of the stored δ rows
        # (the invariant BCState.compute establishes).  An update that
        # ran over a not-yet-repaired row can launder corruption into
        # bc while leaving every row individually clean; the fold check
        # catches that, and re-folding the (now clean) rows repairs it.
        st = self.engine.state
        fold = np.zeros_like(st.bc)
        for j in range(st.num_sources):
            fold += st.delta[j]
        if not np.allclose(st.bc, fold, atol=self.policy.atol, rtol=1e-9):
            self._record(event_index, DETECT, BC_DRIFT,
                         detail="bc != sum of delta rows")
            st.rebuild_bc()
            self._record(event_index, REPAIR, BC_DRIFT,
                         detail="bc re-folded from delta rows")
        return self.events[before:]

    # ------------------------------------------------------------------
    def _sample_drift(self) -> List[int]:
        """Sampled spot-check: which of the sampled rows drifted?"""
        k = self.engine.state.num_sources
        picks = self._rng.choice(
            k, size=min(self.policy.num_check_sources, k), replace=False
        )
        return self.engine.check_rows(sorted(picks), atol=self.policy.atol)

    def _escalate(self, event_index: int, kind: str, detail: str) -> None:
        self.engine.recompute()
        self._record(event_index, ESCALATE, kind, detail=f"full recompute: {detail}")

    def _record(
        self, event_index: int, action: str, kind: str,
        source_index: int = -1, detail: str = "",
    ) -> None:
        self.events.append(
            GuardEvent(int(event_index), action, kind, int(source_index), detail)
        )


def row_drift_component(
    graph, source: int, d_row: np.ndarray, sigma_row: np.ndarray,
    delta_row: np.ndarray, atol: float = 1e-6,
):
    """Name the first drifted component of one stored row against a
    fresh single-source recomputation, or ``None`` when the row is
    clean (``"distance"``/``"sigma"``/``"delta"``, checked in that
    order).

    This is the detection primitive shared by the serial
    :func:`check_rows_against_scratch` and the parallel worker's
    ``check`` handler (:mod:`repro.parallel.worker`), so a guard run
    under ``DynamicBC(workers=N)`` reports exactly what the serial
    guard would.
    """
    from repro.bc.brandes import single_source_state

    source = int(source)
    d, sigma, delta, _ = single_source_state(graph, source)
    delta[source] = 0.0
    if not np.array_equal(d_row, d):
        return "distance"
    if not np.allclose(sigma_row, sigma, atol=atol):
        return "sigma"
    if not np.allclose(delta_row, delta, atol=atol):
        return "delta"
    return None


def check_rows_against_scratch(
    engine, indices: Sequence[int], atol: float = 1e-6
):
    """Compare stored rows against a fresh single-source recomputation.

    Returns ``(index, component)`` pairs — ``component`` naming the
    first drifted array (``"distance"``/``"sigma"``/``"delta"``) — for
    every row of *indices* that drifted.  Shared by the engine's
    ``spot_check``/``check_rows`` and the guard.
    """
    st = engine.state
    snap = engine.graph.snapshot()
    bad: List[tuple] = []
    for i in indices:
        i = int(i)
        component = row_drift_component(
            snap, int(st.sources[i]), st.d[i], st.sigma[i], st.delta[i],
            atol=atol,
        )
        if component is not None:
            bad.append((i, component))
    return bad
