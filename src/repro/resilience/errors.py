"""Structured exceptions for the resilience subsystem.

The dynamic algorithm's Achilles heel (paper §II-D) is its O(kn)
auxiliary state: one half-applied update or one corrupted row silently
poisons every future BC score.  These exception types make failures
*structured* — a caller always learns which update failed, at which
phase, and whether the engine rolled back to a consistent state —
instead of receiving a bare traceback over half-mutated arrays.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ResilienceError(Exception):
    """Base class for all resilience-subsystem failures."""


class UpdateError(ResilienceError):
    """A streaming update failed mid-flight.

    When :attr:`rolled_back` is ``True`` (the transactional engine
    default) the engine's graph, per-source state rows, BC scores and
    counters have been restored to their exact pre-update values: the
    failed update simply never happened and the engine remains safe to
    use.

    Attributes
    ----------
    edge:
        The ``(u, v)`` pair whose update failed.
    operation:
        ``"insert"`` or ``"delete"``.
    source_index:
        Index of the source row being processed when the failure
        surfaced, or ``-1`` when the failure was not source-specific.
    rolled_back:
        Whether the engine state was restored to the pre-update
        snapshot.
    """

    def __init__(
        self,
        edge: Tuple[int, int],
        operation: str,
        cause: BaseException,
        source_index: int = -1,
        rolled_back: bool = True,
    ) -> None:
        self.edge = (int(edge[0]), int(edge[1]))
        self.operation = str(operation)
        self.cause = cause
        self.source_index = int(source_index)
        self.rolled_back = bool(rolled_back)
        state = "rolled back" if rolled_back else "NOT rolled back"
        where = (
            f" at source index {self.source_index}" if self.source_index >= 0 else ""
        )
        super().__init__(
            f"{self.operation} {self.edge} failed{where} "
            f"({type(cause).__name__}: {cause}); engine state {state}"
        )


class CheckpointError(ResilienceError):
    """A checkpoint file is unreadable, corrupt, or incompatible."""

    def __init__(self, path, reason: str, cause: Optional[BaseException] = None):
        self.path = str(path)
        self.reason = reason
        self.cause = cause
        super().__init__(f"{self.path}: {reason}")


class WalError(ResilienceError):
    """The write-ahead journal is corrupt, inconsistent, or misused.

    Raised for damage recovery cannot silently absorb: a corrupt
    record *before* the journal tail (a torn tail — the partial write
    of a crash — is truncated instead), a missing segment, a sequence
    gap between the journal and a checkpoint watermark, or an append
    against a closed/misaligned journal.  The message always names the
    offending path so an operator can act on it.
    """

    def __init__(self, path, reason: str, cause: Optional[BaseException] = None):
        self.path = str(path)
        self.reason = reason
        self.cause = cause
        super().__init__(f"{self.path}: {reason}")


class WalFencedError(WalError):
    """A journal write was refused because the writer's fencing epoch
    is stale.

    Raised when a :class:`~repro.resilience.wal.WriteAheadLog` holder
    tries to commit records after a replica was promoted (the fence
    file now carries a higher epoch): the holder has been *deposed*
    and must stop serving writes.  Nothing reaches disk — the check
    runs before any byte of the commit is written — so a deposed
    primary can never diverge the journal or acknowledge a write the
    new primary will not serve.
    """

    def __init__(self, path, held_epoch: int, current_epoch: int):
        self.held_epoch = int(held_epoch)
        self.current_epoch = int(current_epoch)
        super().__init__(
            path,
            f"writer fenced off: holds epoch {held_epoch} but the "
            f"journal is at epoch {current_epoch} (a replica was "
            f"promoted); refusing to append",
        )


class FaultInjected(RuntimeError):
    """Marker exception raised by an armed :class:`FaultInjector` trap.

    Deliberately *not* a :class:`ResilienceError`: injected faults model
    arbitrary foreign failures (device loss, OOM, a bug in a kernel),
    so recovery paths must not be able to special-case them.
    """
