"""Resilience subsystem: transactional updates, self-healing guards,
checkpoint/restore, and deterministic fault injection.

The dynamic-BC engine's O(kn) auxiliary state is its performance
advantage *and* its biggest operational liability (one corrupted row
silently poisons every future score).  This package makes long-running
streams survivable:

* :mod:`repro.resilience.errors` — structured failure types;
* :mod:`repro.resilience.transactions` — per-update undo journal
  backing the engine's atomic ``_apply``;
* :mod:`repro.resilience.guards` — cadence spot-checks, drift
  classification, in-place row repair, escalation to full recompute;
* :mod:`repro.resilience.checkpoint` — versioned, checksummed NPZ
  checkpoints with atomic writes and bit-identical resume;
* :mod:`repro.resilience.wal` — segmented, CRC-checked write-ahead
  event journal (group-commit fsync, torn-tail truncation, segment GC
  tied to checkpoint watermarks) backing the service's ``ack_durable``
  RPO-zero contract, plus the replication primitives on top of it:
  ``WalTailer`` incremental shipping, epoch fencing tokens, and
  replica retention positions;
* :mod:`repro.resilience.faults` — seeded chaos harness;
* :mod:`repro.resilience.chaos` — end-to-end seeded chaos scenario
  (the CI chaos job and ``python -m repro.cli chaos``);
* :mod:`repro.resilience.drill` — kill -9 crash drills: a live
  ``serve`` subprocess is SIGKILLed mid-stream, recovered from
  checkpoint + journal, and differentially checked against the
  no-crash oracle (the CI crash-drill job and
  ``python -m repro.cli drill``).

See ``docs/RESILIENCE.md`` for the fault model and recovery matrix.
"""

from repro.resilience.chaos import ChaosReport, run_chaos
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    find_checkpoints,
    load_checkpoint,
    load_newest_valid,
    resolve_resume,
    retain_checkpoints,
    save_checkpoint,
)
from repro.resilience.errors import (
    CheckpointError,
    FaultInjected,
    ResilienceError,
    UpdateError,
    WalError,
    WalFencedError,
)
from repro.resilience.faults import FaultInjector
from repro.resilience.guards import Guard, GuardEvent, GuardPolicy
from repro.resilience.transactions import UpdateTransaction
from repro.resilience.wal import (
    WAL_VERSION,
    WalScan,
    WalTailer,
    WriteAheadLog,
    clear_replica_position,
    read_fence,
    record_replica_position,
    replica_positions,
    scan_wal,
    write_fence,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "ChaosReport",
    "Checkpoint",
    "CheckpointError",
    "FaultInjected",
    "FaultInjector",
    "Guard",
    "GuardEvent",
    "GuardPolicy",
    "ResilienceError",
    "UpdateError",
    "UpdateTransaction",
    "WAL_VERSION",
    "WalError",
    "WalFencedError",
    "WalScan",
    "WalTailer",
    "WriteAheadLog",
    "clear_replica_position",
    "find_checkpoints",
    "load_checkpoint",
    "load_newest_valid",
    "read_fence",
    "record_replica_position",
    "replica_positions",
    "resolve_resume",
    "retain_checkpoints",
    "run_chaos",
    "save_checkpoint",
    "scan_wal",
    "write_fence",
]
