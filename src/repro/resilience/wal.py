"""Segmented write-ahead event journal: the durability layer under
the always-on BC service.

Checkpoints bound the *recompute* cost of a crash but not the *data*
cost: any edge event accepted after the last checkpoint dies with the
process.  The journal closes that gap — the service appends every
accepted event here *before* acknowledging it, so the event log (the
source of truth in the streaming-BC setting of Kourtellis et al.) is
reconstructible after a kill -9, and recovery is "newest valid
checkpoint + replay the journal tail" instead of "replay everything".

On-disk format (all little-endian):

* A journal is a directory of segments named
  ``wal-<first_seq:016d>.log``; each segment starts with a 16-byte
  header — magic ``RWAL``, format version (u32), first sequence
  number (u64) — followed by records.
* One record per event: ``seq (u64) | payload_len (u32) | payload |
  crc32 (u32)``, where the payload is the event as compact JSON
  (floats round-trip exactly) and the CRC covers the header bytes and
  payload.  Sequence numbers are the service watermark of the event —
  monotone, contiguous, starting wherever the stream does.

Durability is group-committed: :meth:`WriteAheadLog.append` only
buffers; :meth:`WriteAheadLog.sync` pays one ``fsync`` for everything
buffered since the last one.  The service amortizes that across a
burst with its ``fsync_every`` / ``fsync_delay`` knobs and
acknowledges an event only once its sequence number is synced
(``ack_durable`` mode — RPO zero for acknowledged events).

Recovery (:func:`scan_wal`) validates every record (CRC + contiguous
sequence) and classifies damage: a *torn tail* — the final records of
the final segment cut off or CRC-broken mid-write, with nothing valid
after them — is truncated away (the crash interrupted an unsynced,
therefore unacknowledged, write); anything else (corruption before the
tail, a missing segment, a header mismatch) raises a structured
:class:`~repro.resilience.errors.WalError` rather than silently
dropping acknowledged data.  Segment GC (:meth:`WriteAheadLog.gc`)
deletes segments wholly below the oldest *retained* checkpoint
watermark, so journal size tracks the checkpoint window, not stream
length.


Replication (PR 9) builds two more primitives on the same directory:

* a **fencing token** — a sidecar ``FENCE`` file carrying a monotonic
  epoch, written atomically by :func:`write_fence` when a replica is
  promoted.  Every :meth:`WriteAheadLog.sync` re-reads it *before*
  writing a single byte; a holder whose epoch is stale raises
  :class:`~repro.resilience.errors.WalFencedError` and commits
  nothing, so a deposed primary can neither diverge the journal nor
  acknowledge a write the new primary will not serve (split-brain
  protection);
* a **tailer** — :class:`WalTailer`, an incremental reader a follower
  polls to stream records as the primary appends them.  It tolerates
  the three races a live journal exhibits: an in-progress record at
  the tail (a clean prefix cut — wait and re-poll), segment rotation
  (follow to the segment starting at the next needed sequence), and
  GC deleting segments it has already consumed.  Segments a follower
  still *needs* are protected on the writer side: followers advertise
  their progress in ``replica-<id>.pos`` files and
  :meth:`WriteAheadLog.gc` never deletes past the slowest one.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.graph.stream import EdgeEvent
from repro.resilience.errors import WalError, WalFencedError
from repro.utils.atomicio import atomic_write, fsync_dir

#: bump when the on-disk record/segment layout changes incompatibly
WAL_VERSION = 1

_SEGMENT_MAGIC = b"RWAL"
_SEGMENT_HEADER = struct.Struct("<4sIQ")  # magic, version, first_seq
_RECORD_HEADER = struct.Struct("<QI")  # seq, payload length
_RECORD_CRC = struct.Struct("<I")
#: hard ceiling on one record's payload — anything larger is damage
_MAX_PAYLOAD = 1 << 20

#: rotate to a fresh segment after this many records
DEFAULT_SEGMENT_RECORDS = 4096

_SEGMENT_RE = re.compile(r"^wal-(\d{16})\.log$")


#: sidecar file carrying the monotonic fencing epoch
FENCE_NAME = "FENCE"

_REPLICA_POS_RE = re.compile(r"^replica-([A-Za-z0-9._-]{1,64})\.pos$")


def segment_name(first_seq: int) -> str:
    """Canonical file name of the segment starting at *first_seq*."""
    return f"wal-{first_seq:016d}.log"


def replica_position_name(replica_id: str) -> str:
    """Canonical file name of *replica_id*'s progress marker."""
    if not _REPLICA_POS_RE.match(f"replica-{replica_id}.pos"):
        raise ValueError(
            f"replica id must be 1-64 chars of [A-Za-z0-9._-], "
            f"got {replica_id!r}"
        )
    return f"replica-{replica_id}.pos"


# ----------------------------------------------------------------------
# Fencing token: a monotonic epoch written atomically beside the WAL
# ----------------------------------------------------------------------
def read_fence(directory) -> int:
    """The journal's current fencing epoch (0 when no promotion has
    ever happened — the file does not exist until the first
    :func:`write_fence`)."""
    path = os.path.join(os.fspath(directory), FENCE_NAME)
    try:
        with open(path, "r") as fh:
            blob = fh.read()
    except FileNotFoundError:
        return 0
    try:
        epoch = int(json.loads(blob)["epoch"])
    except (ValueError, KeyError, TypeError) as exc:
        raise WalError(path, f"unreadable fence file ({exc})") from None
    if epoch < 0:
        raise WalError(path, f"negative fence epoch {epoch}")
    return epoch


def write_fence(directory, epoch: int) -> int:
    """Advance the fencing epoch to *epoch* (atomic tmp+fsync+rename,
    then a directory fsync, so the fence survives a crash the instant
    this returns).  The epoch must strictly increase — a stale writer
    cannot re-fence itself back in.  Returns the epoch written."""
    directory = os.fspath(directory)
    epoch = int(epoch)
    current = read_fence(directory)
    if epoch <= current:
        raise WalError(
            os.path.join(directory, FENCE_NAME),
            f"fence epoch must increase: {epoch} <= current {current}",
        )
    with atomic_write(os.path.join(directory, FENCE_NAME)) as fh:
        fh.write(json.dumps({"epoch": epoch}) + "\n")
    fsync_dir(directory)
    return epoch


# ----------------------------------------------------------------------
# Replica progress markers: the GC floor a follower advertises
# ----------------------------------------------------------------------
def record_replica_position(directory, replica_id: str, next_seq: int) -> None:
    """Advertise that follower *replica_id* has consumed every record
    below *next_seq* (atomic write; :meth:`WriteAheadLog.gc` clamps to
    the slowest advertised position so a needed segment is never
    deleted under a live tailer)."""
    if next_seq < 0:
        raise ValueError(f"next_seq must be >= 0, got {next_seq}")
    path = os.path.join(os.fspath(directory), replica_position_name(replica_id))
    with atomic_write(path) as fh:
        fh.write(json.dumps({"next_seq": int(next_seq)}) + "\n")


def clear_replica_position(directory, replica_id: str) -> None:
    """Remove *replica_id*'s progress marker (a promoted or
    decommissioned follower must stop pinning the primary's GC)."""
    path = os.path.join(os.fspath(directory), replica_position_name(replica_id))
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass


def replica_positions(directory) -> Dict[str, int]:
    """``{replica_id: next_seq}`` for every advertised follower."""
    directory = os.fspath(directory)
    out: Dict[str, int] = {}
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return out
    for name in names:
        match = _REPLICA_POS_RE.match(name)
        if not match:
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r") as fh:
                out[match.group(1)] = int(json.loads(fh.read())["next_seq"])
        except FileNotFoundError:
            continue  # cleared between listdir and open
        except (ValueError, KeyError, TypeError) as exc:
            raise WalError(path, f"unreadable replica position ({exc})") from None
    return out


def _encode_event(event: EdgeEvent) -> bytes:
    return json.dumps(
        {"t": event.time, "u": event.u, "v": event.v, "op": event.op},
        separators=(",", ":"),
    ).encode()


def _decode_event(blob: bytes, path: str, seq: int) -> EdgeEvent:
    try:
        rec = json.loads(blob.decode())
        return EdgeEvent(float(rec["t"]), int(rec["u"]), int(rec["v"]),
                         str(rec["op"]))
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise WalError(
            path, f"record seq {seq}: undecodable payload ({exc})"
        ) from None


def encode_record(seq: int, event: EdgeEvent) -> bytes:
    """The exact bytes :meth:`WriteAheadLog.append` writes for one
    event (exposed for the format tests)."""
    payload = _encode_event(event)
    head = _RECORD_HEADER.pack(seq, len(payload))
    crc = zlib.crc32(head + payload) & 0xFFFFFFFF
    return head + payload + _RECORD_CRC.pack(crc)


@dataclass
class SegmentInfo:
    """One scanned segment file."""

    path: str
    first_seq: int
    records: int  #: valid records in the segment
    end_offset: int  #: byte offset just past the last valid record

    @property
    def last_seq(self) -> int:
        """Sequence number of the last valid record (first_seq - 1
        when the segment holds none)."""
        return self.first_seq + self.records - 1


@dataclass
class WalScan:
    """Everything a recovery needs to know about a journal directory."""

    directory: str
    segments: List[SegmentInfo] = field(default_factory=list)
    #: every valid record, in order: (seq, event)
    events: List[Tuple[int, EdgeEvent]] = field(default_factory=list)
    #: path whose tail was torn (partial final write), if any
    torn_path: Optional[str] = None
    #: byte offset the torn segment was (or should be) truncated to
    torn_offset: int = 0
    #: bytes past the last valid record in the torn segment
    torn_bytes: int = 0

    @property
    def first_seq(self) -> Optional[int]:
        return self.events[0][0] if self.events else None

    @property
    def last_seq(self) -> Optional[int]:
        return self.events[-1][0] if self.events else None

    def events_from(self, seq: int) -> List[Tuple[int, EdgeEvent]]:
        """The journal suffix at or past *seq* (the checkpoint
        watermark), i.e. the records recovery must replay."""
        return [(s, e) for s, e in self.events if s >= seq]


def list_segments(directory) -> List[Tuple[int, str]]:
    """``(first_seq, path)`` for every segment file, oldest first."""
    directory = os.fspath(directory)
    out: List[Tuple[int, str]] = []
    for name in sorted(os.listdir(directory)):
        match = _SEGMENT_RE.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(directory, name)))
    return out


def _find_resync(blob: bytes, start: int, min_seq: int) -> Optional[int]:
    """Search *blob* past a broken record for any complete, CRC-valid
    record with a plausible sequence number.

    Distinguishes a *torn tail* (partial final write — nothing valid
    follows, safe to truncate) from *corruption* (valid acknowledged
    records follow the damage — truncating would silently lose them).
    """
    for off in range(start, len(blob) - _RECORD_HEADER.size - _RECORD_CRC.size + 1):
        seq, length = _RECORD_HEADER.unpack_from(blob, off)
        if seq < min_seq or length > _MAX_PAYLOAD:
            continue
        end = off + _RECORD_HEADER.size + length
        if end + _RECORD_CRC.size > len(blob):
            continue
        crc = zlib.crc32(blob[off:end]) & 0xFFFFFFFF
        (stored,) = _RECORD_CRC.unpack_from(blob, end)
        if crc == stored:
            return off
    return None


def scan_wal(directory, truncate: bool = False) -> WalScan:
    """Read and validate every segment of the journal at *directory*.

    With ``truncate=True`` (what :class:`WriteAheadLog` does on open) a
    torn tail is physically truncated off the final segment — and a
    final segment too short to even hold its header is deleted — so the
    journal on disk ends at its last valid record.  Corruption that is
    *not* a torn tail raises :class:`WalError`.
    """
    directory = os.fspath(directory)
    scan = WalScan(directory=directory)
    segments = list_segments(directory)
    expected_seq: Optional[int] = None
    for position, (name_seq, path) in enumerate(segments):
        last_segment = position == len(segments) - 1
        with open(path, "rb") as fh:
            blob = fh.read()
        if len(blob) < _SEGMENT_HEADER.size:
            # A crash can only leave a partial *header* on the newest
            # segment (rotation fsyncs before creating the next file).
            if not last_segment:
                raise WalError(path, "truncated segment header mid-journal")
            scan.torn_path, scan.torn_offset = path, 0
            scan.torn_bytes = len(blob)
            if truncate:
                os.unlink(path)
                fsync_dir(directory)
            break
        magic, version, first_seq = _SEGMENT_HEADER.unpack_from(blob, 0)
        if magic != _SEGMENT_MAGIC:
            raise WalError(path, f"bad segment magic {magic!r}")
        if version != WAL_VERSION:
            raise WalError(
                path,
                f"unsupported journal version {version} "
                f"(this build reads version {WAL_VERSION})",
            )
        if first_seq != name_seq:
            raise WalError(
                path, f"segment header seq {first_seq} does not match file name"
            )
        if expected_seq is not None and first_seq != expected_seq:
            raise WalError(
                path,
                f"missing journal segment: expected seq {expected_seq}, "
                f"found segment starting at {first_seq}",
            )
        info = SegmentInfo(path=path, first_seq=first_seq, records=0,
                           end_offset=_SEGMENT_HEADER.size)
        offset = _SEGMENT_HEADER.size
        seq = first_seq
        while offset < len(blob):
            broken: Optional[str] = None
            end = offset + _RECORD_HEADER.size
            if end > len(blob):
                broken = "cut off mid-header"
            else:
                rec_seq, length = _RECORD_HEADER.unpack_from(blob, offset)
                end += length + _RECORD_CRC.size
                if length > _MAX_PAYLOAD:
                    broken = f"implausible payload length {length}"
                elif end > len(blob):
                    broken = "cut off mid-record"
                else:
                    crc = zlib.crc32(blob[offset:end - _RECORD_CRC.size]) & 0xFFFFFFFF
                    (stored,) = _RECORD_CRC.unpack_from(blob, end - _RECORD_CRC.size)
                    if crc != stored:
                        broken = (f"CRC mismatch (stored {stored:#010x}, "
                                  f"computed {crc:#010x})")
                    elif rec_seq != seq:
                        broken = f"sequence {rec_seq} where {seq} was expected"
            if broken is None:
                event = _decode_event(
                    blob[offset + _RECORD_HEADER.size:end - _RECORD_CRC.size],
                    path, seq,
                )
                scan.events.append((seq, event))
                info.records += 1
                info.end_offset = end
                offset = end
                seq += 1
                continue
            # Damage.  Only a torn tail — final segment, nothing valid
            # after the break — may be repaired by truncation.
            if not last_segment or _find_resync(blob, offset + 1, first_seq) is not None:
                raise WalError(
                    path,
                    f"corrupt record at byte {offset} (seq {seq}): {broken}; "
                    f"valid data follows, refusing to truncate",
                )
            scan.torn_path, scan.torn_offset = path, offset
            scan.torn_bytes = len(blob) - offset
            if truncate:
                os.truncate(path, offset)
                fsync_dir(directory)
            break
        scan.segments.append(info)
        expected_seq = seq
    return scan


class WriteAheadLog:
    """Append-only, group-committed event journal over a directory of
    segments.

    Opening scans (and repairs the torn tail of) whatever is already
    there.  :meth:`append` only buffers the encoded record in memory —
    it never touches the file, so the service can call it from its
    event loop with zero I/O latency and perfect ordering.  All file
    I/O (segment writes, rotation, the single group-commit fsync)
    happens in :meth:`sync`, which the service runs on a dedicated
    journal thread.  ``append`` is safe concurrently with one running
    ``sync``; ``sync``/``close``/``align`` must not race each other
    (the service guarantees one syncer).
    """

    def __init__(
        self,
        directory,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        start_seq: int = 0,
        epoch: Optional[int] = None,
    ) -> None:
        if segment_records < 1:
            raise ValueError(
                f"segment_records must be >= 1, got {segment_records}"
            )
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.segment_records = int(segment_records)
        #: the fencing epoch this holder believes it owns.  ``None``
        #: adopts whatever the fence file says at open; an explicit
        #: value models a holder that opened *before* a later fence
        #: bump (sync will refuse once the on-disk epoch passes it).
        self.epoch = read_fence(self.directory) if epoch is None else int(epoch)
        #: optional fault-injection hook called with a stage name
        #: ("append" / "write" / "fsync") before the matching I/O; a
        #: hook that raises OSError models a full disk or dying device
        #: (see FaultInjector.arm_wal_fault)
        self.fault_hook: Optional[Callable[[str], None]] = None
        #: first unrecoverable write failure; once set, every later
        #: append/sync raises — the journal (and its acks) are dead
        #: until the operator recovers by reopening
        self._failed: Optional[BaseException] = None
        #: the recovery scan performed at open (tail already truncated)
        self.scan = scan_wal(self.directory, truncate=True)
        self._fh = None
        self._segment_count = 0
        if self.scan.segments:
            tail = self.scan.segments[-1]
            self._next_seq = tail.first_seq + tail.records
            if tail.records < self.segment_records:
                self._fh = open(tail.path, "ab")
                self._segment_count = tail.records
        else:
            self._next_seq = int(start_seq)
        # Everything that survived the scan is on disk already.
        self._last_synced_seq = self._next_seq - 1
        #: encoded (seq, record) pairs awaiting the next group commit
        self._pending: List[Tuple[int, bytes]] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will use."""
        return self._next_seq

    @property
    def last_synced_seq(self) -> int:
        """Highest sequence number known durable (``next_seq - 1 -
        unsynced``); acknowledging anything above this is a lie."""
        return self._last_synced_seq

    @property
    def unsynced(self) -> int:
        """Appends buffered since the last :meth:`sync`."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def failed(self) -> Optional[BaseException]:
        """The write failure that killed this journal, if any."""
        return self._failed

    def stats(self) -> Dict:
        """Operator-facing size/lag numbers for health reporting:
        segment count, total on-disk bytes, the fsync lag in records,
        the fencing epoch, and whether the journal has failed."""
        segments = list_segments(self.directory)
        size = 0
        for _, path in segments:
            try:
                size += os.stat(path).st_size
            except FileNotFoundError:
                continue  # GC raced the scan
        return {
            "segments": len(segments),
            "size_bytes": size,
            "next_seq": self._next_seq,
            "last_synced_seq": self._last_synced_seq,
            "fsync_lag_records": self._next_seq - 1 - self._last_synced_seq,
            "epoch": self.epoch,
            "failed": (None if self._failed is None
                       else f"{type(self._failed).__name__}: {self._failed}"),
        }

    def check_fence(self) -> int:
        """Re-read the fence file; raises
        :class:`~repro.resilience.errors.WalFencedError` when this
        holder's epoch has been superseded.  Returns the current
        on-disk epoch.  :meth:`sync` calls this before writing any
        byte, so a deposed holder's buffered records never reach
        disk."""
        current = read_fence(self.directory)
        if current > self.epoch:
            raise WalFencedError(self.directory, self.epoch, current)
        return current

    # ------------------------------------------------------------------
    def align(self, watermark: int) -> None:
        """Reconcile the append cursor with a restored checkpoint
        *watermark* before serving resumes.

        After recovery replays the journal tail the cursor already
        matches; when every journal record is older than the checkpoint
        (all baked in, GC simply had not run yet) the stale segments
        are dropped and the cursor jumps forward.  A cursor *ahead* of
        the watermark means un-replayed records would be overwritten —
        that is a caller bug and raises.
        """
        if self._next_seq == watermark:
            return
        if self._next_seq > watermark:
            raise WalError(
                self.directory,
                f"journal cursor {self._next_seq} is ahead of watermark "
                f"{watermark}: unreplayed records would be overwritten",
            )
        self._close_segment()
        for _, path in list_segments(self.directory):
            os.unlink(path)
        fsync_dir(self.directory)
        self._next_seq = int(watermark)
        self._last_synced_seq = self._next_seq - 1
        with self._lock:
            # Anything buffered here predates the watermark (align is
            # only legal before serving resumes) — drop it with the
            # stale segments.
            self._pending = []

    def append(self, event: EdgeEvent, seq: Optional[int] = None) -> int:
        """Buffer one encoded record in memory; returns its sequence
        number.  On disk — and durable — only after the next
        :meth:`sync`."""
        if self._closed:
            raise WalError(self.directory, "append to a closed journal")
        if self._failed is not None:
            raise WalError(
                self.directory,
                f"append to a failed journal ({self._failed})",
                self._failed,
            )
        if self.fault_hook is not None:
            self.fault_hook("append")
        if seq is None:
            seq = self._next_seq
        elif seq != self._next_seq:
            raise WalError(
                self.directory,
                f"non-contiguous append: seq {seq} where {self._next_seq} "
                f"was expected",
            )
        record = encode_record(seq, event)
        with self._lock:
            self._pending.append((seq, record))
        self._next_seq = seq + 1
        return seq

    def sync(self) -> int:
        """Group commit: write every buffered record (rotating
        segments as needed) and pay one fsync for the lot.  Returns
        the highest durable sequence number.  Appends may continue
        concurrently; they land in the *next* commit.

        Two refusal paths guard the commit *before* any byte is
        written: a stale fencing epoch raises
        :class:`~repro.resilience.errors.WalFencedError` (the holder
        was deposed by a promotion — nothing lands on disk), and a
        previous write failure raises :class:`WalError` (the journal
        is dead until reopened).  An ``OSError`` mid-commit (ENOSPC, a
        dying disk) marks the journal failed and re-raises as a
        structured :class:`WalError`: the batch is *not* acknowledged
        (``last_synced_seq`` is unchanged) and any partially written
        tail is exactly the torn-tail shape recovery already repairs.
        """
        if self._failed is not None:
            raise WalError(
                self.directory,
                f"sync of a failed journal ({self._failed})",
                self._failed,
            )
        self.check_fence()
        with self._lock:
            batch = self._pending
            self._pending = []
        if batch:
            try:
                for seq, record in batch:
                    if (self._fh is None
                            or self._segment_count >= self.segment_records):
                        self._rotate(seq)
                    if self.fault_hook is not None:
                        self.fault_hook("write")
                    self._fh.write(record)
                    self._segment_count += 1
                self._fh.flush()
                if self.fault_hook is not None:
                    self.fault_hook("fsync")
                os.fsync(self._fh.fileno())
            except OSError as exc:
                self._failed = exc
                raise WalError(
                    self.directory,
                    f"journal write failed, acks stopped ({exc})",
                    exc,
                ) from exc
            self._last_synced_seq = batch[-1][0]
        return self._last_synced_seq

    def gc(self, watermark: int) -> List[str]:
        """Delete segments whose every record is below *watermark*
        (already baked into the oldest retained checkpoint).  The
        newest segment is always kept.  Returns the removed paths.

        Retention also accounts for *followers*: the effective horizon
        is clamped to the slowest position advertised in
        ``replica-<id>.pos``, so a segment a live tailer still needs
        is never deleted out from under it — replication lag bounds
        journal size instead of corrupting the follower."""
        positions = replica_positions(self.directory)
        if positions:
            watermark = min(watermark, min(positions.values()))
        segments = list_segments(self.directory)
        removed: List[str] = []
        fh = self._fh  # snapshot: gc may run on the apply thread
        active = fh.name if fh is not None else None
        for (_, path), (next_first, _) in zip(segments, segments[1:]):
            # The next segment's first seq bounds this one's last.
            if next_first <= watermark and path != active:
                os.unlink(path)
                removed.append(path)
            else:
                break
        if removed:
            fsync_dir(self.directory)
        return removed

    def close(self) -> None:
        """Final sync and release the segment handle (idempotent).
        A failed journal skips the sync (it would only re-raise), and
        a *fenced* holder drops its buffered records — they legally
        cannot be committed — so close never raises on the shutdown
        path of a deposed or broken writer."""
        if self._closed:
            return
        if self._failed is None:
            try:
                self.sync()
            except WalFencedError:
                with self._lock:
                    self._pending = []
                if self._fh is not None:
                    self._fh.close()
                    self._fh = None
            else:
                self._close_segment()
        elif self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _close_segment(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
        self._segment_count = 0

    def _rotate(self, first_seq: int) -> None:
        """Seal the active segment (fsync) and start a fresh one; the
        directory entry is fsynced so the new segment survives a crash
        immediately after creation."""
        self._close_segment()
        path = os.path.join(self.directory, segment_name(first_seq))
        if os.path.exists(path):
            raise WalError(path, "segment already exists (journal misuse)")
        self._fh = open(path, "wb")
        self._fh.write(_SEGMENT_HEADER.pack(_SEGMENT_MAGIC, WAL_VERSION, first_seq))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        fsync_dir(self.directory)

    def __repr__(self) -> str:
        return (f"WriteAheadLog({self.directory!r}, next_seq={self._next_seq}, "
                f"synced={self._last_synced_seq}, unsynced={self.unsynced})")


class WalTailer:
    """Incremental reader over a *live* journal directory — the
    follower half of WAL shipping.

    A :class:`WriteAheadLog` writer and any number of tailer processes
    share the directory; each :meth:`poll` returns every complete,
    CRC-valid record at or past the tailer's cursor, in sequence
    order, and leaves the cursor after the last one.  Three races are
    part of normal operation and handled without error:

    * **in-progress tail** — the writer's buffered appends become
      visible as a clean byte *prefix* of the logical stream, so a
      record cut off mid-header or mid-payload simply is not finished
      yet: the tailer stops before it and the next poll retries from
      the same offset;
    * **rotation** — when the current segment ends on a record
      boundary and a segment named for the next needed sequence
      exists, the current segment is sealed (the writer fsyncs before
      creating its successor) and the tailer follows;
    * **GC** — segments the tailer has fully consumed may vanish at
      any time.  A segment it still *needs* disappearing is *not*
      normal (writers clamp :meth:`WriteAheadLog.gc` to advertised
      replica positions) and raises :class:`WalError` — silently
      skipping records would break the replica's bit-identity
      contract.

    Damage that cannot be an in-progress write — a CRC mismatch or
    sequence jump on bytes that are fully present — raises
    :class:`WalError` immediately: a follower must never apply a
    corrupt record.
    """

    def __init__(self, directory, *, start_seq: int = 0) -> None:
        if start_seq < 0:
            raise ValueError(f"start_seq must be >= 0, got {start_seq}")
        self.directory = os.fspath(directory)
        #: sequence number the next emitted record will carry
        self._next_seq = int(start_seq)
        self._path: Optional[str] = None
        self._first_seq = 0
        self._offset = 0
        #: sequence expected at ``_offset`` within the open segment
        self._parse_seq = 0
        #: observability counters
        self.polls = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Cursor: sequence number of the next record to be emitted."""
        return self._next_seq

    @property
    def last_seen_seq(self) -> int:
        """Highest sequence number emitted so far (``start_seq - 1``
        before the first record)."""
        return self._next_seq - 1

    # ------------------------------------------------------------------
    def _locate(self) -> bool:
        """Point the cursor at the segment containing ``_next_seq``;
        ``False`` when the journal has no records there yet."""
        segments = list_segments(self.directory)
        if not segments:
            return False
        covering = [(first, path) for first, path in segments
                    if first <= self._next_seq]
        if not covering:
            raise WalError(
                self.directory,
                f"tailer needs seq {self._next_seq} but the oldest "
                f"segment starts at {segments[0][0]}: the records were "
                f"garbage-collected (or never written)",
            )
        first_seq, path = covering[-1]
        self._path = path
        self._first_seq = first_seq
        self._offset = _SEGMENT_HEADER.size
        self._parse_seq = first_seq
        return True

    def _read_segment(self) -> Optional[bytes]:
        """Bytes of the current segment past the parse offset, with
        the header validated on first contact; ``None`` when the
        segment vanished (GC race — caller relocates)."""
        try:
            with open(self._path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return None
        if len(blob) >= _SEGMENT_HEADER.size:
            magic, version, first_seq = _SEGMENT_HEADER.unpack_from(blob, 0)
            if magic != _SEGMENT_MAGIC:
                raise WalError(self._path, f"bad segment magic {magic!r}")
            if version != WAL_VERSION:
                raise WalError(
                    self._path,
                    f"unsupported journal version {version} "
                    f"(this build reads version {WAL_VERSION})",
                )
            if first_seq != self._first_seq:
                raise WalError(
                    self._path,
                    f"segment header seq {first_seq} does not match "
                    f"file name",
                )
        return blob

    def poll(self, max_records: Optional[int] = None
             ) -> List[Tuple[int, EdgeEvent]]:
        """Every complete record at or past the cursor (bounded by
        *max_records*), advancing the cursor past what was returned."""
        self.polls += 1
        out: List[Tuple[int, EdgeEvent]] = []
        relocations = 0
        while max_records is None or len(out) < max_records:
            if self._path is None and not self._locate():
                break
            blob = self._read_segment()
            if blob is None:
                # The segment vanished under us.  Legal only when we
                # no longer need it — relocation below either finds
                # our cursor in a newer segment or raises.
                self._path = None
                relocations += 1
                if relocations > 2:
                    raise WalError(
                        self.directory,
                        f"tailer could not re-locate seq {self._next_seq} "
                        f"after repeated segment churn",
                    )
                continue
            advanced = self._parse(blob, out, max_records)
            if advanced == "rotate":
                self.rotations += 1
                self._path = None
                continue
            break
        return out

    def _parse(self, blob: bytes, out: List[Tuple[int, EdgeEvent]],
               max_records: Optional[int]) -> str:
        """Consume records from the open segment; returns ``"rotate"``
        when the cursor should move to the next segment, ``"wait"``
        otherwise."""
        size = len(blob)
        while max_records is None or len(out) < max_records:
            offset = self._offset
            if offset >= size:
                break
            end = offset + _RECORD_HEADER.size
            if end > size:
                return "wait"  # header still being written
            rec_seq, length = _RECORD_HEADER.unpack_from(blob, offset)
            if length > _MAX_PAYLOAD:
                raise WalError(
                    self._path,
                    f"implausible payload length {length} at byte "
                    f"{offset} (seq {self._parse_seq} expected)",
                )
            end += length + _RECORD_CRC.size
            if end > size:
                return "wait"  # payload still being written
            crc = zlib.crc32(blob[offset:end - _RECORD_CRC.size]) & 0xFFFFFFFF
            (stored,) = _RECORD_CRC.unpack_from(blob, end - _RECORD_CRC.size)
            if crc != stored:
                # Visible bytes are always a prefix of what the writer
                # wrote, so a complete-but-invalid record is damage,
                # not an in-progress append.
                raise WalError(
                    self._path,
                    f"CRC mismatch at byte {offset} (seq "
                    f"{self._parse_seq} expected): corrupt record under "
                    f"a live tailer",
                )
            if rec_seq != self._parse_seq:
                raise WalError(
                    self._path,
                    f"sequence {rec_seq} where {self._parse_seq} was "
                    f"expected at byte {offset}",
                )
            if rec_seq >= self._next_seq:
                event = _decode_event(
                    blob[offset + _RECORD_HEADER.size:end - _RECORD_CRC.size],
                    self._path, rec_seq,
                )
                out.append((rec_seq, event))
                self._next_seq = rec_seq + 1
            self._offset = end
            self._parse_seq = rec_seq + 1
        # Clean record boundary: follow a rotation when the successor
        # segment exists (the writer seals the old segment first).
        successor = os.path.join(self.directory,
                                 segment_name(self._parse_seq))
        if (self._offset >= size and successor != self._path
                and os.path.exists(successor)):
            return "rotate"
        return "wait"
