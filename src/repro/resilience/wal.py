"""Segmented write-ahead event journal: the durability layer under
the always-on BC service.

Checkpoints bound the *recompute* cost of a crash but not the *data*
cost: any edge event accepted after the last checkpoint dies with the
process.  The journal closes that gap — the service appends every
accepted event here *before* acknowledging it, so the event log (the
source of truth in the streaming-BC setting of Kourtellis et al.) is
reconstructible after a kill -9, and recovery is "newest valid
checkpoint + replay the journal tail" instead of "replay everything".

On-disk format (all little-endian):

* A journal is a directory of segments named
  ``wal-<first_seq:016d>.log``; each segment starts with a 16-byte
  header — magic ``RWAL``, format version (u32), first sequence
  number (u64) — followed by records.
* One record per event: ``seq (u64) | payload_len (u32) | payload |
  crc32 (u32)``, where the payload is the event as compact JSON
  (floats round-trip exactly) and the CRC covers the header bytes and
  payload.  Sequence numbers are the service watermark of the event —
  monotone, contiguous, starting wherever the stream does.

Durability is group-committed: :meth:`WriteAheadLog.append` only
buffers; :meth:`WriteAheadLog.sync` pays one ``fsync`` for everything
buffered since the last one.  The service amortizes that across a
burst with its ``fsync_every`` / ``fsync_delay`` knobs and
acknowledges an event only once its sequence number is synced
(``ack_durable`` mode — RPO zero for acknowledged events).

Recovery (:func:`scan_wal`) validates every record (CRC + contiguous
sequence) and classifies damage: a *torn tail* — the final records of
the final segment cut off or CRC-broken mid-write, with nothing valid
after them — is truncated away (the crash interrupted an unsynced,
therefore unacknowledged, write); anything else (corruption before the
tail, a missing segment, a header mismatch) raises a structured
:class:`~repro.resilience.errors.WalError` rather than silently
dropping acknowledged data.  Segment GC (:meth:`WriteAheadLog.gc`)
deletes segments wholly below the oldest *retained* checkpoint
watermark, so journal size tracks the checkpoint window, not stream
length.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.graph.stream import EdgeEvent
from repro.resilience.errors import WalError
from repro.utils.atomicio import fsync_dir

#: bump when the on-disk record/segment layout changes incompatibly
WAL_VERSION = 1

_SEGMENT_MAGIC = b"RWAL"
_SEGMENT_HEADER = struct.Struct("<4sIQ")  # magic, version, first_seq
_RECORD_HEADER = struct.Struct("<QI")  # seq, payload length
_RECORD_CRC = struct.Struct("<I")
#: hard ceiling on one record's payload — anything larger is damage
_MAX_PAYLOAD = 1 << 20

#: rotate to a fresh segment after this many records
DEFAULT_SEGMENT_RECORDS = 4096

_SEGMENT_RE = re.compile(r"^wal-(\d{16})\.log$")


def segment_name(first_seq: int) -> str:
    """Canonical file name of the segment starting at *first_seq*."""
    return f"wal-{first_seq:016d}.log"


def _encode_event(event: EdgeEvent) -> bytes:
    return json.dumps(
        {"t": event.time, "u": event.u, "v": event.v, "op": event.op},
        separators=(",", ":"),
    ).encode()


def _decode_event(blob: bytes, path: str, seq: int) -> EdgeEvent:
    try:
        rec = json.loads(blob.decode())
        return EdgeEvent(float(rec["t"]), int(rec["u"]), int(rec["v"]),
                         str(rec["op"]))
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise WalError(
            path, f"record seq {seq}: undecodable payload ({exc})"
        ) from None


def encode_record(seq: int, event: EdgeEvent) -> bytes:
    """The exact bytes :meth:`WriteAheadLog.append` writes for one
    event (exposed for the format tests)."""
    payload = _encode_event(event)
    head = _RECORD_HEADER.pack(seq, len(payload))
    crc = zlib.crc32(head + payload) & 0xFFFFFFFF
    return head + payload + _RECORD_CRC.pack(crc)


@dataclass
class SegmentInfo:
    """One scanned segment file."""

    path: str
    first_seq: int
    records: int  #: valid records in the segment
    end_offset: int  #: byte offset just past the last valid record

    @property
    def last_seq(self) -> int:
        """Sequence number of the last valid record (first_seq - 1
        when the segment holds none)."""
        return self.first_seq + self.records - 1


@dataclass
class WalScan:
    """Everything a recovery needs to know about a journal directory."""

    directory: str
    segments: List[SegmentInfo] = field(default_factory=list)
    #: every valid record, in order: (seq, event)
    events: List[Tuple[int, EdgeEvent]] = field(default_factory=list)
    #: path whose tail was torn (partial final write), if any
    torn_path: Optional[str] = None
    #: byte offset the torn segment was (or should be) truncated to
    torn_offset: int = 0
    #: bytes past the last valid record in the torn segment
    torn_bytes: int = 0

    @property
    def first_seq(self) -> Optional[int]:
        return self.events[0][0] if self.events else None

    @property
    def last_seq(self) -> Optional[int]:
        return self.events[-1][0] if self.events else None

    def events_from(self, seq: int) -> List[Tuple[int, EdgeEvent]]:
        """The journal suffix at or past *seq* (the checkpoint
        watermark), i.e. the records recovery must replay."""
        return [(s, e) for s, e in self.events if s >= seq]


def list_segments(directory) -> List[Tuple[int, str]]:
    """``(first_seq, path)`` for every segment file, oldest first."""
    directory = os.fspath(directory)
    out: List[Tuple[int, str]] = []
    for name in sorted(os.listdir(directory)):
        match = _SEGMENT_RE.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(directory, name)))
    return out


def _find_resync(blob: bytes, start: int, min_seq: int) -> Optional[int]:
    """Search *blob* past a broken record for any complete, CRC-valid
    record with a plausible sequence number.

    Distinguishes a *torn tail* (partial final write — nothing valid
    follows, safe to truncate) from *corruption* (valid acknowledged
    records follow the damage — truncating would silently lose them).
    """
    for off in range(start, len(blob) - _RECORD_HEADER.size - _RECORD_CRC.size + 1):
        seq, length = _RECORD_HEADER.unpack_from(blob, off)
        if seq < min_seq or length > _MAX_PAYLOAD:
            continue
        end = off + _RECORD_HEADER.size + length
        if end + _RECORD_CRC.size > len(blob):
            continue
        crc = zlib.crc32(blob[off:end]) & 0xFFFFFFFF
        (stored,) = _RECORD_CRC.unpack_from(blob, end)
        if crc == stored:
            return off
    return None


def scan_wal(directory, truncate: bool = False) -> WalScan:
    """Read and validate every segment of the journal at *directory*.

    With ``truncate=True`` (what :class:`WriteAheadLog` does on open) a
    torn tail is physically truncated off the final segment — and a
    final segment too short to even hold its header is deleted — so the
    journal on disk ends at its last valid record.  Corruption that is
    *not* a torn tail raises :class:`WalError`.
    """
    directory = os.fspath(directory)
    scan = WalScan(directory=directory)
    segments = list_segments(directory)
    expected_seq: Optional[int] = None
    for position, (name_seq, path) in enumerate(segments):
        last_segment = position == len(segments) - 1
        with open(path, "rb") as fh:
            blob = fh.read()
        if len(blob) < _SEGMENT_HEADER.size:
            # A crash can only leave a partial *header* on the newest
            # segment (rotation fsyncs before creating the next file).
            if not last_segment:
                raise WalError(path, "truncated segment header mid-journal")
            scan.torn_path, scan.torn_offset = path, 0
            scan.torn_bytes = len(blob)
            if truncate:
                os.unlink(path)
                fsync_dir(directory)
            break
        magic, version, first_seq = _SEGMENT_HEADER.unpack_from(blob, 0)
        if magic != _SEGMENT_MAGIC:
            raise WalError(path, f"bad segment magic {magic!r}")
        if version != WAL_VERSION:
            raise WalError(
                path,
                f"unsupported journal version {version} "
                f"(this build reads version {WAL_VERSION})",
            )
        if first_seq != name_seq:
            raise WalError(
                path, f"segment header seq {first_seq} does not match file name"
            )
        if expected_seq is not None and first_seq != expected_seq:
            raise WalError(
                path,
                f"missing journal segment: expected seq {expected_seq}, "
                f"found segment starting at {first_seq}",
            )
        info = SegmentInfo(path=path, first_seq=first_seq, records=0,
                           end_offset=_SEGMENT_HEADER.size)
        offset = _SEGMENT_HEADER.size
        seq = first_seq
        while offset < len(blob):
            broken: Optional[str] = None
            end = offset + _RECORD_HEADER.size
            if end > len(blob):
                broken = "cut off mid-header"
            else:
                rec_seq, length = _RECORD_HEADER.unpack_from(blob, offset)
                end += length + _RECORD_CRC.size
                if length > _MAX_PAYLOAD:
                    broken = f"implausible payload length {length}"
                elif end > len(blob):
                    broken = "cut off mid-record"
                else:
                    crc = zlib.crc32(blob[offset:end - _RECORD_CRC.size]) & 0xFFFFFFFF
                    (stored,) = _RECORD_CRC.unpack_from(blob, end - _RECORD_CRC.size)
                    if crc != stored:
                        broken = (f"CRC mismatch (stored {stored:#010x}, "
                                  f"computed {crc:#010x})")
                    elif rec_seq != seq:
                        broken = f"sequence {rec_seq} where {seq} was expected"
            if broken is None:
                event = _decode_event(
                    blob[offset + _RECORD_HEADER.size:end - _RECORD_CRC.size],
                    path, seq,
                )
                scan.events.append((seq, event))
                info.records += 1
                info.end_offset = end
                offset = end
                seq += 1
                continue
            # Damage.  Only a torn tail — final segment, nothing valid
            # after the break — may be repaired by truncation.
            if not last_segment or _find_resync(blob, offset + 1, first_seq) is not None:
                raise WalError(
                    path,
                    f"corrupt record at byte {offset} (seq {seq}): {broken}; "
                    f"valid data follows, refusing to truncate",
                )
            scan.torn_path, scan.torn_offset = path, offset
            scan.torn_bytes = len(blob) - offset
            if truncate:
                os.truncate(path, offset)
                fsync_dir(directory)
            break
        scan.segments.append(info)
        expected_seq = seq
    return scan


class WriteAheadLog:
    """Append-only, group-committed event journal over a directory of
    segments.

    Opening scans (and repairs the torn tail of) whatever is already
    there.  :meth:`append` only buffers the encoded record in memory —
    it never touches the file, so the service can call it from its
    event loop with zero I/O latency and perfect ordering.  All file
    I/O (segment writes, rotation, the single group-commit fsync)
    happens in :meth:`sync`, which the service runs on a dedicated
    journal thread.  ``append`` is safe concurrently with one running
    ``sync``; ``sync``/``close``/``align`` must not race each other
    (the service guarantees one syncer).
    """

    def __init__(
        self,
        directory,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        start_seq: int = 0,
    ) -> None:
        if segment_records < 1:
            raise ValueError(
                f"segment_records must be >= 1, got {segment_records}"
            )
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.segment_records = int(segment_records)
        #: the recovery scan performed at open (tail already truncated)
        self.scan = scan_wal(self.directory, truncate=True)
        self._fh = None
        self._segment_count = 0
        if self.scan.segments:
            tail = self.scan.segments[-1]
            self._next_seq = tail.first_seq + tail.records
            if tail.records < self.segment_records:
                self._fh = open(tail.path, "ab")
                self._segment_count = tail.records
        else:
            self._next_seq = int(start_seq)
        # Everything that survived the scan is on disk already.
        self._last_synced_seq = self._next_seq - 1
        #: encoded (seq, record) pairs awaiting the next group commit
        self._pending: List[Tuple[int, bytes]] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will use."""
        return self._next_seq

    @property
    def last_synced_seq(self) -> int:
        """Highest sequence number known durable (``next_seq - 1 -
        unsynced``); acknowledging anything above this is a lie."""
        return self._last_synced_seq

    @property
    def unsynced(self) -> int:
        """Appends buffered since the last :meth:`sync`."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def align(self, watermark: int) -> None:
        """Reconcile the append cursor with a restored checkpoint
        *watermark* before serving resumes.

        After recovery replays the journal tail the cursor already
        matches; when every journal record is older than the checkpoint
        (all baked in, GC simply had not run yet) the stale segments
        are dropped and the cursor jumps forward.  A cursor *ahead* of
        the watermark means un-replayed records would be overwritten —
        that is a caller bug and raises.
        """
        if self._next_seq == watermark:
            return
        if self._next_seq > watermark:
            raise WalError(
                self.directory,
                f"journal cursor {self._next_seq} is ahead of watermark "
                f"{watermark}: unreplayed records would be overwritten",
            )
        self._close_segment()
        for _, path in list_segments(self.directory):
            os.unlink(path)
        fsync_dir(self.directory)
        self._next_seq = int(watermark)
        self._last_synced_seq = self._next_seq - 1
        with self._lock:
            # Anything buffered here predates the watermark (align is
            # only legal before serving resumes) — drop it with the
            # stale segments.
            self._pending = []

    def append(self, event: EdgeEvent, seq: Optional[int] = None) -> int:
        """Buffer one encoded record in memory; returns its sequence
        number.  On disk — and durable — only after the next
        :meth:`sync`."""
        if self._closed:
            raise WalError(self.directory, "append to a closed journal")
        if seq is None:
            seq = self._next_seq
        elif seq != self._next_seq:
            raise WalError(
                self.directory,
                f"non-contiguous append: seq {seq} where {self._next_seq} "
                f"was expected",
            )
        record = encode_record(seq, event)
        with self._lock:
            self._pending.append((seq, record))
        self._next_seq = seq + 1
        return seq

    def sync(self) -> int:
        """Group commit: write every buffered record (rotating
        segments as needed) and pay one fsync for the lot.  Returns
        the highest durable sequence number.  Appends may continue
        concurrently; they land in the *next* commit."""
        with self._lock:
            batch = self._pending
            self._pending = []
        if batch:
            for seq, record in batch:
                if (self._fh is None
                        or self._segment_count >= self.segment_records):
                    self._rotate(seq)
                self._fh.write(record)
                self._segment_count += 1
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._last_synced_seq = batch[-1][0]
        return self._last_synced_seq

    def gc(self, watermark: int) -> List[str]:
        """Delete segments whose every record is below *watermark*
        (already baked into the oldest retained checkpoint).  The
        newest segment is always kept.  Returns the removed paths."""
        segments = list_segments(self.directory)
        removed: List[str] = []
        fh = self._fh  # snapshot: gc may run on the apply thread
        active = fh.name if fh is not None else None
        for (_, path), (next_first, _) in zip(segments, segments[1:]):
            # The next segment's first seq bounds this one's last.
            if next_first <= watermark and path != active:
                os.unlink(path)
                removed.append(path)
            else:
                break
        if removed:
            fsync_dir(self.directory)
        return removed

    def close(self) -> None:
        """Final sync and release the segment handle (idempotent)."""
        if self._closed:
            return
        self.sync()
        self._close_segment()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _close_segment(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
        self._segment_count = 0

    def _rotate(self, first_seq: int) -> None:
        """Seal the active segment (fsync) and start a fresh one; the
        directory entry is fsynced so the new segment survives a crash
        immediately after creation."""
        self._close_segment()
        path = os.path.join(self.directory, segment_name(first_seq))
        if os.path.exists(path):
            raise WalError(path, "segment already exists (journal misuse)")
        self._fh = open(path, "wb")
        self._fh.write(_SEGMENT_HEADER.pack(_SEGMENT_MAGIC, WAL_VERSION, first_seq))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        fsync_dir(self.directory)

    def __repr__(self) -> str:
        return (f"WriteAheadLog({self.directory!r}, next_seq={self._next_seq}, "
                f"synced={self._last_synced_seq}, unsynced={self.unsynced})")
