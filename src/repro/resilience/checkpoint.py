"""Versioned, checksummed engine checkpoints.

A long replay over millions of stream events must survive process
death without recomputing from scratch (the paper's Table-III baseline
is exactly the cost being avoided).  A checkpoint freezes everything
the engine needs to continue bit-identically:

* the graph (CSR ``row_offsets`` + ``col_indices``),
* the O(kn) per-source state (``sources``, ``d``, ``sigma``,
  ``delta``) and the shared ``bc`` vector,
* the aggregate :class:`~repro.gpu.counters.KernelCounters`,
* the replay cursor (``event_index``) and the float-exact running
  totals (``simulated_prefix``, ``applied_count``) so a resumed
  :func:`~repro.graph.stream.replay` reproduces the uninterrupted
  run's accumulated seconds bit-for-bit (same left-fold order).

Format: a single NPZ file (no pickling) carrying ``version`` and a
SHA-256 ``checksum`` over every other entry; writes go to a temporary
file in the same directory followed by :func:`os.replace`, so a crash
mid-write can never leave a truncated checkpoint under the real name.
"""

from __future__ import annotations

import hashlib
import os
import re
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gpu.counters import KernelCounters
from repro.resilience.errors import CheckpointError

#: bump when the on-disk layout changes incompatibly
CHECKPOINT_VERSION = 1

_COUNTER_INT_FIELDS = (
    "steps", "work_items", "atomic_ops", "barriers", "kernel_launches",
)


@dataclass
class Checkpoint:
    """In-memory image of one checkpoint file."""

    version: int
    backend: str
    vectorized: bool
    event_index: int
    simulated_prefix: float
    applied_count: int
    row_offsets: np.ndarray
    col_indices: np.ndarray
    sources: np.ndarray
    d: np.ndarray
    sigma: np.ndarray
    delta: np.ndarray
    bc: np.ndarray
    counters: KernelCounters = field(default_factory=KernelCounters)

    # ------------------------------------------------------------------
    def restore_engine(
        self,
        device=None,
        num_blocks: int = 0,
        op_costs=None,
        vectorized: Optional[bool] = None,
        backend: Optional[str] = None,
    ):
        """Rebuild a :class:`~repro.bc.engine.DynamicBC` from this
        checkpoint.  Backend and vectorized default to the values the
        checkpointed engine used; device/num_blocks/op_costs take the
        engine defaults unless overridden."""
        # Lazy imports: repro.bc.engine imports this package's siblings.
        from repro.bc.engine import DynamicBC
        from repro.bc.state import BCState
        from repro.gpu.costmodel import DEFAULT_OP_COSTS
        from repro.graph.csr import CSRGraph
        from repro.graph.dynamic import DynamicGraph

        graph = DynamicGraph.from_csr(
            CSRGraph(self.row_offsets.copy(), self.col_indices.copy())
        )
        state = BCState(
            self.sources.copy(), self.d.copy(), self.sigma.copy(),
            self.delta.copy(), self.bc.copy(),
        )
        engine = DynamicBC(
            graph, state,
            backend=self.backend if backend is None else backend,
            device=device,
            num_blocks=num_blocks,
            op_costs=DEFAULT_OP_COSTS if op_costs is None else op_costs,
            vectorized=self.vectorized if vectorized is None else vectorized,
        )
        engine.counters = _copy_counters(self.counters)
        return engine

    def restore_into(self, engine) -> None:
        """Overwrite *engine*'s graph, state and counters in place
        (used by ``replay(..., resume_from=...)`` so callers keep their
        configured engine object)."""
        from repro.bc.state import BCState
        from repro.graph.csr import CSRGraph
        from repro.graph.dynamic import DynamicGraph

        engine.graph = DynamicGraph.from_csr(
            CSRGraph(self.row_offsets.copy(), self.col_indices.copy())
        )
        engine.state = BCState(
            self.sources.copy(), self.d.copy(), self.sigma.copy(),
            self.delta.copy(), self.bc.copy(),
        )
        engine.counters = _copy_counters(self.counters)


def _copy_counters(counters: KernelCounters) -> KernelCounters:
    return KernelCounters(
        steps=counters.steps,
        work_items=counters.work_items,
        bytes_moved=counters.bytes_moved,
        atomic_ops=counters.atomic_ops,
        barriers=counters.barriers,
        kernel_launches=counters.kernel_launches,
        by_kernel=dict(counters.by_kernel),
    )


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _payload(engine, event_index, simulated_prefix, applied_count) -> Dict[str, np.ndarray]:
    snap = engine.graph.snapshot()
    st = engine.state
    c = engine.counters
    kernels = sorted(c.by_kernel)
    data: Dict[str, np.ndarray] = {
        "version": np.int64(CHECKPOINT_VERSION),
        "backend": np.array(engine.backend),
        "vectorized": np.bool_(engine.vectorized),
        "event_index": np.int64(event_index),
        "simulated_prefix": np.float64(simulated_prefix),
        "applied_count": np.int64(applied_count),
        "row_offsets": snap.row_offsets,
        "col_indices": snap.col_indices,
        "sources": st.sources,
        "d": st.d,
        "sigma": st.sigma,
        "delta": st.delta,
        "bc": st.bc,
        "counters_bytes_moved": np.float64(c.bytes_moved),
        "counters_ints": np.array(
            [getattr(c, f) for f in _COUNTER_INT_FIELDS], dtype=np.int64
        ),
        "by_kernel_names": np.array(kernels),
        "by_kernel_items": np.array(
            [c.by_kernel[k] for k in kernels], dtype=np.int64
        ),
    }
    return data


def _digest(data: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every entry (sorted by key) except the checksum."""
    h = hashlib.sha256()
    for key in sorted(data):
        if key == "checksum":
            continue
        arr = np.ascontiguousarray(data[key])
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def save_checkpoint(
    engine,
    path,
    event_index: int = 0,
    simulated_prefix: float = 0.0,
    applied_count: int = 0,
) -> str:
    """Atomically write a checkpoint of *engine* to *path*.

    The file is first written to ``<path>.tmp`` in the same directory
    and then renamed over the target, so readers never observe a
    partial checkpoint.  Returns the final path as a string.
    """
    from repro.utils.atomicio import atomic_write

    data = _payload(engine, event_index, simulated_prefix, applied_count)
    data["checksum"] = np.array(_digest(data))
    path = os.fspath(path)
    with atomic_write(path, "wb") as fh:
        np.savez(fh, **data)
    return path


#: cadence/replay checkpoint file name: ckpt-<watermark:08d>.npz
_CKPT_RE = re.compile(r"^ckpt-(\d+)\.npz$")


def checkpoint_watermark(path) -> Optional[int]:
    """The stream watermark encoded in a ``ckpt-NNNNNNNN.npz`` file
    name, or ``None`` for files that do not follow the convention."""
    match = _CKPT_RE.match(os.path.basename(os.fspath(path)))
    return int(match.group(1)) if match else None


def find_checkpoints(directory) -> List[str]:
    """Every retained checkpoint under *directory*, oldest watermark
    first (in-flight ``.tmp`` files are never listed)."""
    directory = os.fspath(directory)
    found = []
    for name in os.listdir(directory):
        match = _CKPT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return [path for _, path in sorted(found)]


def retain_checkpoints(directory, keep: int) -> List[str]:
    """Delete all but the newest *keep* checkpoints in *directory*;
    returns the removed paths (oldest first)."""
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    paths = find_checkpoints(directory)
    removed = paths[:-keep] if len(paths) > keep else []
    for path in removed:
        os.unlink(path)
    return removed


def load_newest_valid(directory) -> Tuple[Checkpoint, str, List[str]]:
    """Load the newest checkpoint in *directory* that passes
    validation, walking backwards past corrupt ones.

    Returns ``(checkpoint, path, skipped)`` where *skipped* lists the
    newer files rejected (each with a warning naming the reason).
    Raises :class:`CheckpointError` when no checkpoint validates.
    """
    directory = os.fspath(directory)
    paths = find_checkpoints(directory)
    if not paths:
        raise CheckpointError(directory, "no checkpoints found")
    skipped: List[str] = []
    last_error: Optional[CheckpointError] = None
    for path in reversed(paths):
        try:
            return load_checkpoint(path), path, skipped
        except CheckpointError as exc:
            warnings.warn(
                f"skipping corrupt checkpoint {path}: {exc.reason}",
                RuntimeWarning, stacklevel=2,
            )
            skipped.append(path)
            last_error = exc
    raise CheckpointError(
        directory,
        f"all {len(paths)} retained checkpoints are corrupt "
        f"(newest: {last_error.reason})",
        last_error,
    )


def resolve_resume(path) -> Tuple[Checkpoint, str, List[str]]:
    """Resolve a ``resume_from`` target to a loaded checkpoint.

    *path* may be a directory (the newest valid retained checkpoint is
    chosen) or a file.  A corrupt file does not abort the resume: the
    next-newest retained checkpoint in the same directory is tried
    instead, with a warning — losing a little replay progress beats
    losing the service.  Returns ``(checkpoint, path, skipped)``.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        return load_newest_valid(path)
    try:
        return load_checkpoint(path), path, []
    except CheckpointError as exc:
        warnings.warn(
            f"checkpoint {path} failed to load ({exc.reason}); falling "
            f"back to the next-newest retained checkpoint",
            RuntimeWarning, stacklevel=2,
        )
        mark = checkpoint_watermark(path)
        directory = os.path.dirname(path) or "."
        older = [
            p for p in find_checkpoints(directory)
            if os.path.abspath(p) != os.path.abspath(path)
            and (mark is None or (checkpoint_watermark(p) or 0) < mark)
        ]
        skipped = [path]
        last_error = exc
        for candidate in reversed(older):
            try:
                ckpt = load_checkpoint(candidate)
                return ckpt, candidate, skipped
            except CheckpointError as fallback_exc:
                warnings.warn(
                    f"skipping corrupt checkpoint {candidate}: "
                    f"{fallback_exc.reason}",
                    RuntimeWarning, stacklevel=2,
                )
                skipped.append(candidate)
                last_error = fallback_exc
        raise CheckpointError(
            path,
            f"{exc.reason}; no older valid checkpoint to fall back to",
            last_error,
        ) from exc


def load_checkpoint(path) -> Checkpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` when the file is unreadable, its
    checksum does not match, or its version is unsupported.
    """
    path = os.fspath(path)
    try:
        with np.load(path, allow_pickle=False) as npz:
            data = {key: npz[key] for key in npz.files}
    except CheckpointError:
        raise
    except Exception as exc:  # zip/npy corruption, missing file, ...
        raise CheckpointError(path, f"unreadable checkpoint ({exc})", exc) from exc
    if "checksum" not in data or "version" not in data:
        raise CheckpointError(path, "not a checkpoint file (missing metadata)")
    stored = str(data["checksum"])
    actual = _digest(data)
    if stored != actual:
        raise CheckpointError(
            path, f"checksum mismatch (stored {stored[:12]}…, computed {actual[:12]}…)"
        )
    version = int(data["version"])
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            path,
            f"unsupported checkpoint version {version} "
            f"(this build reads version {CHECKPOINT_VERSION})",
        )
    ints = data["counters_ints"]
    counters = KernelCounters(
        bytes_moved=float(data["counters_bytes_moved"]),
        by_kernel={
            str(name): int(items)
            for name, items in zip(
                data["by_kernel_names"].tolist(), data["by_kernel_items"].tolist()
            )
        },
        **{f: int(ints[j]) for j, f in enumerate(_COUNTER_INT_FIELDS)},
    )
    return Checkpoint(
        version=version,
        backend=str(data["backend"]),
        vectorized=bool(data["vectorized"]),
        event_index=int(data["event_index"]),
        simulated_prefix=float(data["simulated_prefix"]),
        applied_count=int(data["applied_count"]),
        row_offsets=data["row_offsets"],
        col_indices=data["col_indices"],
        sources=data["sources"],
        d=data["d"],
        sigma=data["sigma"],
        delta=data["delta"],
        bc=data["bc"],
        counters=counters,
    )
