"""Deterministic random-number helpers.

All experiments in this repository are seeded so that every table and
figure is exactly reproducible run-to-run.  The helpers here wrap
:mod:`numpy.random` Generators and provide utilities the experiment
drivers need (child streams, sampling without replacement).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (non-deterministic), an integer seed, an existing
    generator (returned unchanged so callers can thread one generator
    through a pipeline), or a :class:`numpy.random.SeedSequence`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Create *n* statistically independent child generators.

    Used when an experiment fans out over graphs or trials and each
    branch must be reproducible regardless of execution order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        return [default_rng(int(seed.integers(0, 2**63 - 1))) for _ in range(n)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def sample_without_replacement(
    rng: np.random.Generator,
    population: int,
    k: int,
    exclude: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Sample *k* distinct integers from ``range(population)``.

    ``exclude`` removes candidates before sampling (e.g. the endpoints
    of an edge under test).  Raises :class:`ValueError` when fewer than
    *k* candidates remain.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if exclude:
        mask = np.ones(population, dtype=bool)
        mask[np.asarray(list(exclude), dtype=np.int64)] = False
        candidates = np.flatnonzero(mask)
    else:
        candidates = np.arange(population, dtype=np.int64)
    if k > candidates.size:
        raise ValueError(
            f"cannot sample {k} distinct values from {candidates.size} candidates"
        )
    return np.sort(rng.choice(candidates, size=k, replace=False)).astype(np.int64)
