"""Shared utilities: seeded RNG helpers, table rendering, timers, validation.

These are small, dependency-free building blocks used across the graph,
GPU-model, and betweenness-centrality packages.
"""

from repro.utils.atomicio import atomic_write, fsync_dir
from repro.utils.prng import default_rng, sample_without_replacement, spawn_rngs
from repro.utils.tables import format_table, format_float
from repro.utils.timing import WallTimer
from repro.utils.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_type,
)

__all__ = [
    "atomic_write",
    "fsync_dir",
    "default_rng",
    "sample_without_replacement",
    "spawn_rngs",
    "format_table",
    "format_float",
    "WallTimer",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_type",
]
