"""Argument-validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> Any:
    """Raise :class:`TypeError` unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " or ".join(t.__name__ for t in types)
        )
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value


def check_positive(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Raise :class:`ValueError` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value
