"""Plain-text table rendering for experiment reports.

The CLI and the benchmark harness print paper-style tables (Table I-III)
to stdout; this module renders them without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Format a float compactly: fixed-point for ordinary magnitudes,
    scientific notation for very small or very large values."""
    if value != value:  # NaN
        return "nan"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6 or magnitude < 10 ** (-digits - 1):
        return f"{value:.{digits}e}"
    return f"{value:,.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    align: Optional[Sequence[str]] = None,
) -> str:
    """Render rows as an aligned ASCII table.

    ``align`` is a per-column sequence of ``"l"`` or ``"r"``; numeric
    columns default to right alignment when ``align`` is omitted.
    """
    str_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: {row!r}"
            )
        str_rows.append(
            [format_float(c) if isinstance(c, float) else str(c) for c in row]
        )

    if align is None:
        align = []
        for col in range(len(headers)):
            numeric = all(
                _is_numeric(r[col]) for r in str_rows
            ) and str_rows  # empty table -> left
            align.append("r" if numeric else "l")
    if len(align) != len(headers):
        raise ValueError("align must have one entry per column")

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, width, a in zip(cells, widths, align):
            parts.append(cell.rjust(width) if a == "r" else cell.ljust(width))
        return "| " + " | ".join(parts) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def _is_numeric(text: str) -> bool:
    try:
        float(text.replace(",", "").rstrip("x%"))
        return True
    except ValueError:
        return False
