"""Atomic, durable file writes — the one way the repo produces
durable artifacts.

Every on-disk artifact a crash must not be able to corrupt (graph
files, edge streams, workloads, checkpoints) goes through
:func:`atomic_write`: the bytes land in a temporary file in the target
directory, are fsynced, and only then renamed over the destination, so
a reader can observe either the complete old file or the complete new
one — never a truncated hybrid.  The repo linter's R006 rule bans
plain ``open(path, "w")`` writes to durable paths in ``resilience/``
and ``service/`` precisely so this helper (or the equivalent inline
tmp + fsync + ``os.replace`` pattern) is the only route.
"""

from __future__ import annotations

import contextlib
import os

__all__ = ["atomic_write", "fsync_dir"]


@contextlib.contextmanager
def atomic_write(path, mode: str = "w", **open_kwargs):
    """Context manager yielding a file handle whose contents replace
    *path* atomically on success.

    The handle writes to ``<path>.tmp`` in the same directory; on a
    clean exit the data is flushed, fsynced, and renamed over *path*
    with :func:`os.replace`.  On an exception the temporary file is
    removed and *path* is left untouched.
    """
    if "r" in mode or "+" in mode:
        raise ValueError(f"atomic_write requires a write-only mode, got {mode!r}")
    path = os.fspath(path)
    tmp = path + ".tmp"
    try:
        with open(tmp, mode, **open_kwargs) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp)


def fsync_dir(path) -> None:
    """fsync a directory so a rename/creation inside it is durable.

    Best-effort: platforms (or filesystems) that refuse to fsync a
    directory fd are silently tolerated — the data-file fsync has
    already happened and the rename is atomic either way.
    """
    with contextlib.suppress(OSError):
        fd = os.open(os.fspath(path), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
