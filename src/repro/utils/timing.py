"""Wall-clock timing helpers.

The experiment drivers report both *simulated* time (from the GPU cost
model) and *wall-clock* time of the vectorized Python implementation;
``WallTimer`` measures the latter.
"""

from __future__ import annotations

import time
from typing import Optional


class WallTimer:
    """Context manager / stopwatch around :func:`time.perf_counter`.

    >>> with WallTimer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True

    The timer can be reused; ``elapsed`` always reflects the most recent
    completed interval, and ``total`` accumulates across intervals.
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0
        self.total: float = 0.0

    def start(self) -> "WallTimer":
        """Begin an interval; errors if already running."""
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the interval, returning and recording its duration."""
        if self._start is None:
            raise RuntimeError("timer not running")
        self.elapsed = time.perf_counter() - self._start
        self.total += self.elapsed
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "WallTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
