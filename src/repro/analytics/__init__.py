"""Further dynamic analytics on the same substrate (§VI future work).

"There are plenty of other graph algorithms that can benefit from
either dynamic implementations or parallelism" — this package applies
the repository's machinery (stored per-source rows, level-synchronous
repair, the virtual-GPU cost model) to distance-based analytics:

* :class:`~repro.analytics.distances.DynamicDistances` — maintains the
  k-source BFS distance matrix under streaming edge insertions and
  deletions (the ``d`` half of the BC state, without σ/δ).
* :mod:`repro.analytics.closeness` — closeness and harmonic centrality
  estimates from the maintained distances.
"""

from repro.analytics.closeness import (
    closeness_of_sources,
    harmonic_centrality_estimate,
)
from repro.analytics.distances import DistanceUpdateReport, DynamicDistances

__all__ = [
    "DynamicDistances",
    "DistanceUpdateReport",
    "closeness_of_sources",
    "harmonic_centrality_estimate",
]
