"""Dynamic maintenance of a k-source BFS distance matrix.

This is the distance-only specialization of the paper's machinery: the
stored state is just ``d`` (no σ/δ), updates use the same
classification trichotomy, and the Case-3 repair is the pull-free
relabeling BFS of :func:`repro.bc.update_core.distant_level_update`'s
stage 2 — vertices can only move *closer* on insertion, so the frontier
only carries movers.

Deletions: a deleted non-DAG arc changes nothing; a deleted DAG arc
whose lower endpoint keeps another predecessor changes nothing
(distances, unlike σ, survive redundant-path loss); otherwise distances
grow and the affected row is recomputed (the standard practical
treatment of the hard decremental case).

Costs are charged through the node-parallel accountant on the same
virtual GPU as the BC engines, so distance maintenance and BC updates
are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.bc.accountants import make_accountant
from repro.bc.cases import Case, classify_insertion
from repro.gpu.costmodel import CostModel
from repro.gpu.device import TESLA_C2075, DeviceSpec
from repro.gpu.executor import schedule_blocks
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.utils.prng import SeedLike, default_rng, sample_without_replacement


@dataclass
class DistanceUpdateReport:
    """Observability of one distance-matrix update."""

    edge: tuple
    operation: str
    cases: np.ndarray          # int8[k] (insertion trichotomy)
    moved: np.ndarray          # int64[k], vertices whose distance changed
    recomputed_rows: int       # deletion fallback count
    simulated_seconds: float


class DynamicDistances:
    """k-source shortest-path distances under streaming updates."""

    def __init__(
        self,
        graph: Union[DynamicGraph, CSRGraph],
        sources: Sequence[int],
        device: DeviceSpec = TESLA_C2075,
    ) -> None:
        self.graph = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph.from_csr(graph)
        )
        self.sources = np.asarray(sorted(int(s) for s in sources), dtype=np.int64)
        if np.unique(self.sources).size != self.sources.size:
            raise ValueError("sources must be distinct")
        snap = self.graph.snapshot()
        if self.sources.size:
            self.d = np.vstack(
                [snap.bfs_distances(int(s)) for s in self.sources]
            )
        else:
            self.d = np.empty((0, snap.num_vertices), dtype=np.int64)
        self.device = device
        self.cost_model = CostModel(device)

    # ------------------------------------------------------------------
    @classmethod
    def with_random_sources(
        cls,
        graph: Union[DynamicGraph, CSRGraph],
        num_sources: int,
        seed: SeedLike = None,
        device: DeviceSpec = TESLA_C2075,
    ) -> "DynamicDistances":
        """Sample ``num_sources`` distinct sources uniformly."""
        snap = graph.snapshot() if isinstance(graph, DynamicGraph) else graph
        rng = default_rng(seed)
        k = min(num_sources, snap.num_vertices)
        sources = sample_without_replacement(rng, snap.num_vertices, k)
        return cls(graph, sources, device)

    @property
    def num_sources(self) -> int:
        return int(self.sources.size)

    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> DistanceUpdateReport:
        """Insert {u, v}; repair every source row whose distances
        shrink (Cases 1 and 2 need no distance work at all)."""
        if not self.graph.insert_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already present or self loop")
        snap = self.graph.snapshot()
        k = self.num_sources
        cases = np.empty(k, dtype=np.int8)
        moved = np.zeros(k, dtype=np.int64)
        per_source = np.zeros(k)
        for i in range(k):
            case, u_high, u_low = classify_insertion(self.d[i], u, v)
            cases[i] = int(case)
            acc = make_accountant("gpu-node", snap.num_vertices,
                                  2 * snap.num_edges)
            acc.classify()
            if case == Case.DISTANT_LEVEL:
                moved[i] = self._repair_row(snap, self.d[i], u_high, u_low, acc)
            per_source[i] = self.cost_model.trace_seconds(acc.finish())
        sim = schedule_blocks(per_source, self.device).total_seconds
        return DistanceUpdateReport(
            edge=(u, v), operation="insert", cases=cases, moved=moved,
            recomputed_rows=0, simulated_seconds=sim,
        )

    def delete_edge(self, u: int, v: int) -> DistanceUpdateReport:
        """Delete {u, v}; rows that relied on the arc are recomputed."""
        if not self.graph.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) not present")
        pre = self.graph.snapshot()
        k = self.num_sources
        needs_recompute = []
        for i in range(k):
            du, dv = int(self.d[i][u]), int(self.d[i][v])
            if abs(du - dv) != 1:
                continue  # not a DAG arc for this source: no change
            high, low = (u, v) if du < dv else (v, u)
            nbrs = pre.neighbors(low)
            preds = nbrs[self.d[i][nbrs] == self.d[i][low] - 1]
            if not np.any(preds != high):
                needs_recompute.append(i)
        self.graph.delete_edge(u, v)
        snap = self.graph.snapshot()
        per_source = np.zeros(k)
        for i in needs_recompute:
            self.d[i] = snap.bfs_distances(int(self.sources[i]))
            # charged as a full node-parallel BFS of the row
            acc = make_accountant("gpu-node", snap.num_vertices,
                                  2 * snap.num_edges)
            acc.init(snap.num_vertices)
            acc.sp_level(frontier=snap.num_vertices,
                         arcs=2 * snap.num_edges,
                         onpath=snap.num_vertices, raw_new=0,
                         new=snap.num_vertices)
            per_source[i] = self.cost_model.trace_seconds(acc.finish())
        sim = schedule_blocks(per_source, self.device).total_seconds
        return DistanceUpdateReport(
            edge=(u, v), operation="delete",
            cases=np.zeros(k, dtype=np.int8),
            moved=np.zeros(k, dtype=np.int64),
            recomputed_rows=len(needs_recompute),
            simulated_seconds=sim,
        )

    # ------------------------------------------------------------------
    def _repair_row(self, snap: CSRGraph, d: np.ndarray, u_high: int,
                    u_low: int, acc) -> int:
        """Insertion-only relabeling BFS: vertices move strictly closer."""
        moved = 0
        d[u_low] = d[u_high] + 1
        frontier = np.array([u_low], dtype=np.int64)
        level = int(d[u_low])
        moved += 1
        while frontier.size:
            tails, heads = snap.frontier_arcs(frontier)
            heads = heads.astype(np.int64)
            relabel = heads[d[heads] > level + 1]
            movers = np.unique(relabel)
            acc.pull_level(frontier=int(frontier.size), pull_arcs=0,
                           scan_arcs=int(tails.size),
                           raw_new=int(relabel.size), new=int(movers.size))
            if movers.size == 0:
                break
            d[movers] = level + 1
            moved += int(movers.size)
            frontier = movers
            level += 1
        return moved

    def verify(self) -> None:
        """Assert every row equals a scratch BFS on the current graph."""
        snap = self.graph.snapshot()
        for i, s in enumerate(self.sources):
            fresh = snap.bfs_distances(int(s))
            if not np.array_equal(self.d[i], fresh):
                bad = np.flatnonzero(self.d[i] != fresh)[:5]
                raise AssertionError(
                    f"distance row for source {int(s)} wrong at {bad}"
                )

    def __repr__(self) -> str:
        return (
            f"DynamicDistances(k={self.num_sources}, "
            f"n={self.graph.num_vertices})"
        )
