"""Closeness and harmonic centrality from maintained distances.

With a :class:`~repro.analytics.distances.DynamicDistances` oracle the
usual distance-based centralities come for free after every update:

* **closeness of a source** s (exact): ``(r - 1) / sum_t d(s, t)``
  over the ``r`` vertices reachable from s (the standard
  component-aware normalization).
* **harmonic centrality of every vertex** (estimated): with k uniform
  random sources, ``H(v) ~ (n - 1) / k * sum_s 1 / d(s, v)`` — the
  sampling estimator dual to the paper's k-source BC approximation, and
  well-defined on disconnected graphs (1/inf = 0).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.distances import DynamicDistances
from repro.graph.csr import DIST_INF


def closeness_of_sources(oracle: DynamicDistances) -> np.ndarray:
    """Exact closeness centrality of each tracked source
    (``float64[k]``, 0 for isolated sources)."""
    k = oracle.num_sources
    out = np.zeros(k, dtype=np.float64)
    for i in range(k):
        d = oracle.d[i]
        reach = d != DIST_INF
        r = int(np.count_nonzero(reach))
        total = float(d[reach].sum())
        if r > 1 and total > 0:
            # component-aware (Wasserman-Faust) normalization
            n = d.size
            out[i] = ((r - 1) / total) * ((r - 1) / (n - 1)) if n > 1 else 0.0
    return out


def harmonic_centrality_estimate(oracle: DynamicDistances) -> np.ndarray:
    """Sampled harmonic centrality of every vertex (``float64[n]``).

    Unbiased up to the source sample: each vertex accumulates
    ``1/d(s, v)`` over the k tracked sources, rescaled by
    ``(n - 1) / k``.  A vertex's own source row contributes 0
    (``d(s, s) = 0`` is excluded).
    """
    k = oracle.num_sources
    n = oracle.graph.num_vertices
    if k == 0 or n == 0:
        return np.zeros(n, dtype=np.float64)
    inv = np.zeros(n, dtype=np.float64)
    for i in range(k):
        d = oracle.d[i]
        mask = (d > 0) & (d < DIST_INF)
        inv[mask] += 1.0 / d[mask]
    return inv * ((n - 1) / k)
