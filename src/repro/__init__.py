"""repro — dynamic betweenness centrality with edge- and node-parallel
GPU execution models.

A from-scratch reproduction of McLaughlin & Bader, *Revisiting Edge and
Node Parallelism for Dynamic GPU Graph Analytics* (IPDPS Workshops,
2014).  See README.md for a tour and DESIGN.md for the system map.

Public surface (stable):

* :mod:`repro.graph` — CSR graphs, dynamic updates, generators, I/O
* :mod:`repro.gpu` — the virtual-GPU device/cost/scheduling model
* :mod:`repro.bc` — static (Brandes) and dynamic BC engines
* :mod:`repro.analysis` — drivers for every table/figure of the paper
* :mod:`repro.cli` — ``python -m repro.cli all``
"""

from repro._version import __version__
from repro.bc import DynamicBC, brandes_bc, static_bc_gpu
from repro.graph import CSRGraph, DynamicGraph
from repro.gpu import CORE_I7_2600K, GTX_560, TESLA_C2075, DeviceSpec

__all__ = [
    "__version__",
    "DynamicBC",
    "brandes_bc",
    "static_bc_gpu",
    "CSRGraph",
    "DynamicGraph",
    "DeviceSpec",
    "TESLA_C2075",
    "GTX_560",
    "CORE_I7_2600K",
]
