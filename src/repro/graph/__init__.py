"""Graph substrate: CSR storage, dynamic updates, generators, and I/O.

The betweenness-centrality engines operate on :class:`CSRGraph`
snapshots; streaming experiments mutate a :class:`DynamicGraph`
(a STINGER-inspired growable adjacency structure) and take CSR
snapshots between updates.
"""

from repro.graph.csr import CSRGraph, DIST_INF
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import (
    co_papers,
    complete_bipartite,
    complete_graph,
    erdos_renyi,
    grid_2d,
    kronecker,
    path_graph,
    preferential_attachment,
    random_triangulation,
    router_level,
    star_graph,
    watts_strogatz,
    web_crawl,
    zachary_karate,
)
from repro.graph.io import (
    load_dimacs_metis,
    load_edge_list,
    load_npz,
    save_dimacs_metis,
    save_edge_list,
    save_npz,
)
from repro.graph.properties import GraphProperties, analyze
from repro.graph.stream import EdgeEvent, EdgeStream, ReplayResult, replay
from repro.graph.suite import BenchmarkGraph, SUITE_SPECS, load_suite, make_suite_graph

__all__ = [
    "CSRGraph",
    "DynamicGraph",
    "DIST_INF",
    "co_papers",
    "complete_bipartite",
    "complete_graph",
    "erdos_renyi",
    "grid_2d",
    "kronecker",
    "path_graph",
    "preferential_attachment",
    "random_triangulation",
    "router_level",
    "star_graph",
    "watts_strogatz",
    "web_crawl",
    "zachary_karate",
    "load_dimacs_metis",
    "load_edge_list",
    "load_npz",
    "save_dimacs_metis",
    "save_edge_list",
    "save_npz",
    "GraphProperties",
    "analyze",
    "EdgeEvent",
    "EdgeStream",
    "ReplayResult",
    "replay",
    "BenchmarkGraph",
    "SUITE_SPECS",
    "load_suite",
    "make_suite_graph",
]
