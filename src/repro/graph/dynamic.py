"""Growable adjacency structure for streaming graph updates.

Inspired by STINGER (Ediger et al., HPEC 2012): each vertex owns a
capacity-doubling edge array, so insertions are O(1) amortized and
deletions O(degree).  The betweenness-centrality engines consume
immutable :class:`~repro.graph.csr.CSRGraph` snapshots, which this class
produces lazily and caches until the next mutation.

The experiment protocol of the paper ("100 edges are chosen at random to
be removed from the graph ... then reinserted one at a time") maps to
:meth:`remove_random_edges` followed by repeated :meth:`insert_edge`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

_INITIAL_CAPACITY = 4


class DynamicGraph:
    """Mutable undirected simple graph with CSR snapshotting."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        self.num_vertices = int(num_vertices)
        self.num_edges = 0
        self._adj: List[np.ndarray] = [
            np.empty(_INITIAL_CAPACITY, dtype=np.int32) for _ in range(num_vertices)
        ]
        self._deg = np.zeros(num_vertices, dtype=np.int64)
        self._snapshot: Optional[CSRGraph] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "DynamicGraph":
        """Copy an immutable graph into mutable form."""
        dyn = cls(graph.num_vertices)
        degrees = graph.degrees
        for v in range(graph.num_vertices):
            deg = int(degrees[v])
            cap = max(_INITIAL_CAPACITY, deg)
            arr = np.empty(cap, dtype=np.int32)
            arr[:deg] = graph.neighbors(v)
            dyn._adj[v] = arr
        dyn._deg = degrees.copy()
        dyn.num_edges = graph.num_edges
        dyn._snapshot = graph
        return dyn

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[Tuple[int, int]]) -> "DynamicGraph":
        return cls.from_csr(CSRGraph.from_edges(num_vertices, edges))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        """Current number of neighbors of vertex *v*."""
        self._check_vertex(v)
        return int(self._deg[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Copy of vertex *v*'s current neighbor array (unsorted)."""
        self._check_vertex(v)
        return self._adj[v][: self._deg[v]].copy()

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge {u, v} is currently present."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        # Scan the smaller endpoint's list.
        if self._deg[u] > self._deg[v]:
            u, v = v, u
        return bool(np.any(self._adj[u][: self._deg[u]] == v))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id.

        Per the paper (§II-D): "a node insertion causes no change to
        existing BC scores" — engines treat the new vertex as its own
        component until edges attach it.
        """
        self._adj.append(np.empty(_INITIAL_CAPACITY, dtype=np.int32))
        self._deg = np.append(self._deg, 0)
        self.num_vertices += 1
        self._snapshot = None
        return self.num_vertices - 1

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert undirected edge {u, v}; returns False if it existed
        (or is a self loop), True when actually inserted."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v or self.has_edge(u, v):
            return False
        self._append(u, v)
        self._append(v, u)
        self.num_edges += 1
        self._patch_snapshot(u, v, insert=True)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete undirected edge {u, v}; returns False if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v or not self.has_edge(u, v):
            return False
        self._remove(u, v)
        self._remove(v, u)
        self.num_edges -= 1
        self._patch_snapshot(u, v, insert=False)
        return True

    def _patch_snapshot(self, u: int, v: int, insert: bool) -> None:
        """Keep the cached CSR current across a single-edge mutation.

        Streaming experiments snapshot after every update, so a full
        rebuild (O(n + m) with a Python-level gather) is the hot path;
        splicing two arcs into the cached arrays is a pair of C-level
        memmoves instead.
        """
        snap = self._snapshot
        if snap is None:
            return
        offsets = snap.row_offsets
        cols = snap.col_indices
        lo_u, hi_u = offsets[u], offsets[u + 1]
        lo_v, hi_v = offsets[v], offsets[v + 1]
        if insert:
            pos_u = lo_u + np.searchsorted(cols[lo_u:hi_u], v)
            pos_v = lo_v + np.searchsorted(cols[lo_v:hi_v], u)
            new_cols = np.insert(cols, [int(pos_u), int(pos_v)],
                                 np.array([v, u], dtype=np.int32))
        else:
            pos_u = lo_u + int(np.searchsorted(cols[lo_u:hi_u], v))
            pos_v = lo_v + int(np.searchsorted(cols[lo_v:hi_v], u))
            new_cols = np.delete(cols, [pos_u, pos_v])
        new_offsets = offsets.copy()
        delta = 1 if insert else -1
        new_offsets[u + 1:] += delta
        new_offsets[v + 1:] += delta
        self._snapshot = CSRGraph(new_offsets, new_cols.astype(np.int32))

    def remove_random_edges(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Remove *count* random edges; returns them as an ``(count, 2)``
        array in removal order, ready to be re-inserted one at a time.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count > self.num_edges:
            raise ValueError(
                f"cannot remove {count} edges from a graph with {self.num_edges}"
            )
        edges = self.snapshot().edge_list()
        chosen = rng.choice(edges.shape[0], size=count, replace=False)
        removed = edges[chosen]
        for u, v in removed:
            self.delete_edge(int(u), int(v))
        return removed

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """Immutable CSR view of the current graph (cached).

        Rebuilt with one concatenation plus a single lexsort instead of
        a per-vertex sort loop — snapshotting after every streaming
        update is on the hot path of the experiment drivers.
        """
        if self._snapshot is None:
            offsets = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(self._deg, out=offsets[1:])
            if self.num_vertices == 0:
                cols = np.empty(0, dtype=np.int32)
            else:
                cols = np.concatenate(
                    [self._adj[v][: self._deg[v]]
                     for v in range(self.num_vertices)]
                )
                rows = np.repeat(
                    np.arange(self.num_vertices, dtype=np.int64), self._deg
                )
                cols = cols[np.lexsort((cols, rows))]
            self._snapshot = CSRGraph(offsets, cols.astype(np.int32))
        return self._snapshot

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _append(self, u: int, v: int) -> None:
        deg = int(self._deg[u])
        arr = self._adj[u]
        if deg == arr.size:
            grown = np.empty(max(_INITIAL_CAPACITY, arr.size * 2), dtype=np.int32)
            grown[:deg] = arr[:deg]
            self._adj[u] = arr = grown
        arr[deg] = v
        self._deg[u] = deg + 1

    def _remove(self, u: int, v: int) -> None:
        deg = int(self._deg[u])
        arr = self._adj[u][:deg]
        idx = int(np.nonzero(arr == v)[0][0])
        arr[idx] = arr[deg - 1]  # swap-with-last, O(1) removal
        self._deg[u] = deg - 1

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise IndexError(
                f"vertex {v} out of range for graph with {self.num_vertices} vertices"
            )

    def __repr__(self) -> str:
        return f"DynamicGraph(n={self.num_vertices}, m={self.num_edges})"
