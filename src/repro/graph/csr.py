"""Compressed-sparse-row (CSR) storage for undirected graphs.

This is the static snapshot format every kernel in :mod:`repro.bc`
consumes.  Each undirected edge ``{u, v}`` is stored as the two directed
arcs ``(u, v)`` and ``(v, u)``, matching how GPU BFS kernels traverse
adjacency in both directions (the paper's ``for (v, w) in E`` iterates
arcs).

Distances use ``int32`` with the sentinel :data:`DIST_INF` for
unreachable vertices.  The sentinel is a large finite value rather than
``-1`` so that the update-scenario classification ``|d(u) - d(v)|``
(Section II-D of the paper) remains correct arithmetic even when one or
both endpoints are unreachable from the source.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

#: Distance sentinel for "unreachable".  Large enough that
#: ``DIST_INF - d`` is always > 1 for any real distance d, small enough
#: that ``DIST_INF + 1`` does not overflow int64 arithmetic in callers.
DIST_INF = np.int64(2**40)

EdgeInput = Union[np.ndarray, Sequence[Tuple[int, int]]]


class CSRGraph:
    """Immutable undirected graph in CSR form.

    Parameters are the raw CSR arrays; most callers should construct
    graphs via :meth:`from_edges` or the generators in
    :mod:`repro.graph.generators`.

    Attributes
    ----------
    num_vertices : int
        Number of vertices ``n``; vertices are ``0 .. n-1``.
    num_edges : int
        Number of *undirected* edges ``m``.
    row_offsets : numpy.ndarray
        ``int64[n + 1]`` offsets into :attr:`col_indices`.
    col_indices : numpy.ndarray
        ``int32[2 m]`` neighbor lists, sorted within each row.
    """

    __slots__ = ("num_vertices", "num_edges", "row_offsets", "col_indices", "_arcs")

    def __init__(self, row_offsets: np.ndarray, col_indices: np.ndarray) -> None:
        row_offsets = np.asarray(row_offsets, dtype=np.int64)
        col_indices = np.asarray(col_indices, dtype=np.int32)
        if row_offsets.ndim != 1 or row_offsets.size == 0:
            raise ValueError("row_offsets must be a 1-D array of length n+1")
        if row_offsets[0] != 0 or row_offsets[-1] != col_indices.size:
            raise ValueError(
                "row_offsets must start at 0 and end at len(col_indices)"
            )
        if np.any(np.diff(row_offsets) < 0):
            raise ValueError("row_offsets must be non-decreasing")
        n = row_offsets.size - 1
        if col_indices.size and (
            col_indices.min() < 0 or col_indices.max() >= n
        ):
            raise ValueError("col_indices contains out-of-range vertex ids")
        if col_indices.size % 2 != 0:
            raise ValueError(
                "undirected CSR must contain an even number of arcs "
                f"(got {col_indices.size})"
            )
        self.num_vertices = int(n)
        self.num_edges = int(col_indices.size // 2)
        self.row_offsets = row_offsets
        self.col_indices = col_indices
        self._arcs: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: EdgeInput,
        *,
        allow_duplicates: bool = True,
    ) -> "CSRGraph":
        """Build a graph from an ``(m, 2)`` edge array or pair sequence.

        Self loops are dropped; duplicate edges are merged (the graphs
        in this study are simple).  Set ``allow_duplicates=False`` to
        raise instead of silently merging.
        """
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        edge_arr = np.asarray(edges, dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edge_arr.shape}")
        if edge_arr.size and (
            edge_arr.min() < 0 or edge_arr.max() >= num_vertices
        ):
            raise ValueError("edge endpoints out of range")

        # Canonicalize: drop self loops, order endpoints, deduplicate.
        keep = edge_arr[:, 0] != edge_arr[:, 1]
        edge_arr = edge_arr[keep]
        lo = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
        hi = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
        keys = lo * num_vertices + hi
        unique_keys, first_idx = np.unique(keys, return_index=True)
        if not allow_duplicates and unique_keys.size != keys.size:
            raise ValueError("duplicate edges present and allow_duplicates=False")
        lo, hi = lo[first_idx], hi[first_idx]

        tails = np.concatenate([lo, hi])
        heads = np.concatenate([hi, lo])
        order = np.lexsort((heads, tails))
        tails, heads = tails[order], heads[order]
        row_offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(row_offsets, tails + 1, 1)
        np.cumsum(row_offsets, out=row_offsets)
        return cls(row_offsets, heads.astype(np.int32))

    @classmethod
    def empty(cls, num_vertices: int) -> "CSRGraph":
        """Graph with *num_vertices* isolated vertices."""
        return cls.from_edges(num_vertices, np.empty((0, 2), dtype=np.int64))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of vertex *v* (a view, do not mutate)."""
        self._check_vertex(v)
        return self.col_indices[self.row_offsets[v] : self.row_offsets[v + 1]]

    def degree(self, v: int) -> int:
        """Number of neighbors of vertex *v*."""
        self._check_vertex(v)
        return int(self.row_offsets[v + 1] - self.row_offsets[v])

    @property
    def degrees(self) -> np.ndarray:
        """``int64[n]`` vertex degrees."""
        return np.diff(self.row_offsets)

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge {u, v} is present."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return False
        nbrs = self.neighbors(u)
        idx = np.searchsorted(nbrs, v)
        return bool(idx < nbrs.size and nbrs[idx] == v)

    def arcs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(tails, heads)`` arrays of all ``2 m`` directed arcs.

        This is the flat edge list the edge-parallel kernels iterate;
        the result is cached on the (immutable) graph.
        """
        if self._arcs is None:
            tails = np.repeat(
                np.arange(self.num_vertices, dtype=np.int32),
                np.diff(self.row_offsets),
            )
            self._arcs = (tails, self.col_indices)
        return self._arcs

    def edge_list(self) -> np.ndarray:
        """``(m, 2)`` canonical (lo < hi) undirected edge array."""
        tails, heads = self.arcs()
        mask = tails < heads
        return np.column_stack([tails[mask], heads[mask]]).astype(np.int64)

    def undirected_non_edges(
        self, rng: np.random.Generator, count: int, max_tries: int = 10_000_000
    ) -> np.ndarray:
        """Sample *count* distinct vertex pairs that are **not** edges.

        Used by the experiment drivers to pick random insertions.
        Rejection sampling; raises :class:`RuntimeError` if the graph is
        too dense to find enough non-edges within ``max_tries``.
        """
        n = self.num_vertices
        if n < 2:
            raise ValueError("graph must have at least 2 vertices")
        max_pairs = n * (n - 1) // 2
        if count > max_pairs - self.num_edges:
            raise ValueError("not enough non-edges in the graph")
        found = set()
        result = []
        tries = 0
        while len(result) < count:
            tries += 1
            if tries > max_tries:
                raise RuntimeError("could not sample enough non-edges")
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in found or self.has_edge(*key):
                continue
            found.add(key)
            result.append(key)
        return np.asarray(result, dtype=np.int64)

    # ------------------------------------------------------------------
    # Traversal helpers (shared by properties + test oracles)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Level-synchronous BFS distances (``int64[n]``, DIST_INF =
        unreachable).  Vectorized frontier expansion over CSR."""
        self._check_vertex(source)
        dist = np.full(self.num_vertices, DIST_INF, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int32)
        level = 0
        while frontier.size:
            neigh = self._gather_neighbors(frontier)
            neigh = neigh[dist[neigh] == DIST_INF]
            if neigh.size == 0:
                break
            frontier = np.unique(neigh)
            level += 1
            dist[frontier] = level
        return dist

    def connected_components(self) -> np.ndarray:
        """Component label per vertex (``int64[n]``, labels are the
        minimum vertex id of each component)."""
        labels = np.full(self.num_vertices, -1, dtype=np.int64)
        for v in range(self.num_vertices):
            if labels[v] != -1:
                continue
            reach = self.bfs_distances(v) != DIST_INF
            labels[reach] = v
        return labels

    def frontier_arcs(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """All arcs leaving the given frontier vertices.

        Returns ``(tails, heads)`` where ``tails[i]`` is the frontier
        vertex owning arc *i*.  This is the gather primitive the
        level-synchronous kernels are built on.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        starts = self.row_offsets[frontier]
        counts = self.row_offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int32)
            return empty, empty
        out_offsets = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=out_offsets[1:])
        idx = np.arange(total, dtype=np.int64)
        idx += np.repeat(starts - out_offsets, counts)
        tails = np.repeat(frontier.astype(np.int32), counts)
        return tails, self.col_indices[idx]

    def _gather_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Concatenate the adjacency lists of all frontier vertices."""
        starts = self.row_offsets[frontier]
        counts = self.row_offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int32)
        # Index arithmetic instead of a Python loop: classic CSR gather.
        out_offsets = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=out_offsets[1:])
        idx = np.arange(total, dtype=np.int64)
        idx += np.repeat(starts - out_offsets, counts)
        return self.col_indices[idx]

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise IndexError(
                f"vertex {v} out of range for graph with {self.num_vertices} vertices"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.row_offsets, other.row_offsets)
            and np.array_equal(self.col_indices, other.col_indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"
