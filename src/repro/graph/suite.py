"""The benchmark suite: scaled stand-ins for the paper's Table I graphs.

Each entry mirrors one DIMACS-challenge input by *class* (see
DESIGN.md §3).  The default scale produces graphs of a few thousand
vertices so the whole evaluation runs in minutes of pure Python; pass a
larger ``scale`` to approach the paper's sizes (the generators are
linear-time).

>>> from repro.graph.suite import load_suite
>>> suite = load_suite(scale=1.0, seed=7)
>>> sorted(suite) == ['caida', 'coPap', 'del', 'eu', 'kron', 'pref', 'small']
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.utils.prng import SeedLike, default_rng


@dataclass(frozen=True)
class BenchmarkGraph:
    """One suite entry: the graph plus its Table-I metadata."""

    name: str
    full_name: str
    significance: str
    graph: CSRGraph


#: name -> (full name, Table-I significance, builder(n, rng) -> CSRGraph,
#:          base vertex count at scale=1.0)
SUITE_SPECS: Dict[str, Tuple[str, str, Callable, int]] = {
    "caida": (
        "caidaRouterLevel",
        "Internet Router Level Graph",
        lambda n, rng: gen.router_level(n, seed=rng),
        1922,
    ),
    "coPap": (
        "coPapersCiteseer",
        "Social Network",
        lambda n, rng: gen.co_papers(n, seed=rng),
        1400,
    ),
    "del": (
        "delaunay_n20",
        "Random Triangulation",
        lambda n, rng: gen.random_triangulation(n, seed=rng),
        4096,
    ),
    "eu": (
        "eu-2005",
        "Web Crawl",
        lambda n, rng: gen.web_crawl(n, seed=rng),
        2048,
    ),
    "kron": (
        "kron_g500-simple-logn19",
        "Kronecker Graph",
        lambda n, rng: gen.kronecker(_log2_ceil(n), edge_factor=16, seed=rng),
        2048,
    ),
    "pref": (
        "preferentialAttachment",
        "Scale-free",
        lambda n, rng: gen.preferential_attachment(n, m=5, seed=rng),
        2000,
    ),
    "small": (
        "smallworld",
        "Logarithmic Diameter",
        lambda n, rng: gen.watts_strogatz(n, k=10, p=0.1, seed=rng),
        2000,
    ),
}


def _log2_ceil(n: int) -> int:
    scale = 1
    while (1 << scale) < n:
        scale += 1
    return scale


def make_suite_graph(
    name: str, scale: float = 1.0, seed: SeedLike = 0
) -> BenchmarkGraph:
    """Build a single suite graph by short name (e.g. ``"caida"``)."""
    if name not in SUITE_SPECS:
        raise KeyError(
            f"unknown suite graph {name!r}; choose from {sorted(SUITE_SPECS)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    full_name, significance, builder, base_n = SUITE_SPECS[name]
    rng = default_rng(seed)
    graph = builder(max(32, int(base_n * scale)), rng)
    return BenchmarkGraph(name, full_name, significance, graph)


def load_suite(
    scale: float = 1.0,
    seed: SeedLike = 0,
    names: Optional[Tuple[str, ...]] = None,
) -> Dict[str, BenchmarkGraph]:
    """Build the full (or a named subset of the) benchmark suite.

    Seeding is per-graph and independent of subset choice, so
    ``load_suite(names=("caida",))["caida"]`` equals
    ``load_suite()["caida"]``.
    """
    chosen = tuple(SUITE_SPECS) if names is None else names
    suite = {}
    for name in chosen:
        # Derive a stable per-graph seed from the suite seed + name.
        sub_seed = _name_seed(seed, name)
        suite[name] = make_suite_graph(name, scale=scale, seed=sub_seed)
    return suite


def _name_seed(seed: SeedLike, name: str) -> int:
    base = int(default_rng(seed).integers(0, 2**31 - 1)) if not isinstance(seed, int) else seed
    return (base * 1_000_003 + sum(ord(c) * 31**i for i, c in enumerate(name))) % (2**63 - 1)
