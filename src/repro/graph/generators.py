"""Synthetic graph generators covering every class in the paper's suite.

Table I of the paper draws from the 10th DIMACS challenge: an internet
router-level topology (caidaRouterLevel), a co-authorship social network
(coPapersCiteseer), a random Delaunay triangulation (delaunay_n20), a
web crawl (eu-2005), a Kronecker/Graph500 graph (kron_g500-simple-logn19),
a scale-free preferential-attachment graph, and a Watts–Strogatz small
world.  The real files are hundreds of MB and not redistributable here,
so each class is *generated* at configurable scale with the structural
signatures that matter to the experiments: degree distribution,
diameter, and clustering (see DESIGN.md §3).

Every generator takes a ``seed`` and is fully deterministic for a given
seed.  All generators return simple undirected :class:`CSRGraph`
instances (self loops and multi-edges are merged away).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.prng import SeedLike, default_rng


# ----------------------------------------------------------------------
# Classic deterministic topologies (used heavily by tests)
# ----------------------------------------------------------------------
def path_graph(n: int) -> CSRGraph:
    """Path 0-1-2-...-(n-1)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    idx = np.arange(n - 1, dtype=np.int64) if n > 1 else np.empty(0, dtype=np.int64)
    return CSRGraph.from_edges(n, np.column_stack([idx, idx + 1]) if n > 1 else [])


def star_graph(n: int) -> CSRGraph:
    """Star with center 0 and n-1 leaves."""
    if n < 1:
        raise ValueError("n must be >= 1")
    leaves = np.arange(1, n, dtype=np.int64)
    return CSRGraph.from_edges(
        n, np.column_stack([np.zeros(n - 1, dtype=np.int64), leaves]) if n > 1 else []
    )


def complete_graph(n: int) -> CSRGraph:
    """Complete graph K_n."""
    if n < 0:
        raise ValueError("n must be >= 0")
    u, v = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(n, np.column_stack([u, v]).astype(np.int64))


def complete_bipartite(a: int, b: int) -> CSRGraph:
    """Complete bipartite graph K_{a,b} (parts ``0..a-1`` and
    ``a..a+b-1``) — a useful BC oracle: every cross pair has exactly
    ``min-side`` shortest paths."""
    if a < 1 or b < 1:
        raise ValueError("both parts must be non-empty")
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = np.tile(np.arange(a, a + b, dtype=np.int64), a)
    return CSRGraph.from_edges(a + b, np.column_stack([left, right]))


def grid_2d(rows: int, cols: int) -> CSRGraph:
    """rows x cols 4-neighbor grid."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    vert = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    return CSRGraph.from_edges(rows * cols, np.vstack([horiz, vert]))


def zachary_karate() -> CSRGraph:
    """Zachary's karate club (34 vertices, 78 edges) — the standard
    small real-world test graph with known BC scores."""
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8),
        (0, 10), (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21),
        (0, 31), (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19),
        (1, 21), (1, 30), (2, 3), (2, 7), (2, 8), (2, 9), (2, 13),
        (2, 27), (2, 28), (2, 32), (3, 7), (3, 12), (3, 13), (4, 6),
        (4, 10), (5, 6), (5, 10), (5, 16), (6, 16), (8, 30), (8, 32),
        (8, 33), (9, 33), (13, 33), (14, 32), (14, 33), (15, 32),
        (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
        (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32),
        (23, 33), (24, 25), (24, 27), (24, 31), (25, 31), (26, 29),
        (26, 33), (27, 33), (28, 31), (28, 33), (29, 32), (29, 33),
        (30, 32), (30, 33), (31, 32), (31, 33), (32, 33),
    ]
    return CSRGraph.from_edges(34, edges)


# ----------------------------------------------------------------------
# Random models
# ----------------------------------------------------------------------
def erdos_renyi(n: int, m: int, seed: SeedLike = None) -> CSRGraph:
    """G(n, m): *m* distinct uniform random edges."""
    rng = default_rng(seed)
    if n < 2 and m > 0:
        raise ValueError("need at least 2 vertices for edges")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds max simple edges {max_edges}")
    chosen: set = set()
    while len(chosen) < m:
        need = m - len(chosen)
        us = rng.integers(0, n, size=2 * need + 8)
        vs = rng.integers(0, n, size=2 * need + 8)
        for u, v in zip(us, vs):
            if u == v:
                continue
            key = (min(int(u), int(v)), max(int(u), int(v)))
            chosen.add(key)
            if len(chosen) == m:
                break
    return CSRGraph.from_edges(n, np.asarray(sorted(chosen), dtype=np.int64))


def watts_strogatz(
    n: int, k: int = 10, p: float = 0.1, seed: SeedLike = None
) -> CSRGraph:
    """Watts–Strogatz small world (the paper's *smallworld* graph,
    logarithmic diameter [21]).

    Ring lattice where each vertex connects to its ``k`` nearest
    neighbors (k even), then each edge is rewired with probability *p*.
    """
    rng = default_rng(seed)
    if k % 2 != 0 or k < 2:
        raise ValueError(f"k must be even and >= 2, got {k}")
    if n <= k:
        raise ValueError(f"need n > k, got n={n}, k={k}")
    if not 0 <= p <= 1:
        raise ValueError(f"p must be in [0, 1], got {p}")
    base = np.arange(n, dtype=np.int64)
    edges = []
    for offset in range(1, k // 2 + 1):
        edges.append(np.column_stack([base, (base + offset) % n]))
    edge_arr = np.vstack(edges)
    rewire = rng.random(edge_arr.shape[0]) < p
    for i in np.flatnonzero(rewire):
        u = edge_arr[i, 0]
        for _ in range(8):  # bounded retries to keep the graph simple
            w = int(rng.integers(0, n))
            if w != u:
                edge_arr[i, 1] = w
                break
    return CSRGraph.from_edges(n, edge_arr)


def preferential_attachment(
    n: int, m: int = 5, seed: SeedLike = None
) -> CSRGraph:
    """Barabási–Albert preferential attachment (the paper's *pref*
    graph: scale-free, power-law degrees [20]).

    Each new vertex attaches to *m* existing vertices chosen with
    probability proportional to degree (repeated-nodes method).
    """
    rng = default_rng(seed)
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if n <= m:
        raise ValueError(f"need n > m, got n={n}, m={m}")
    targets = list(range(m))
    repeated: list = []
    edges = []
    for v in range(m, n):
        chosen = set()
        while len(chosen) < m:
            if repeated and rng.random() < 0.999:  # degree-proportional
                cand = repeated[int(rng.integers(0, len(repeated)))]
            else:  # uniform fallback keeps early steps well defined
                cand = int(rng.integers(0, v))
            if cand != v:
                chosen.add(cand)
        for t in chosen:
            edges.append((v, t))
            repeated.extend([v, t])
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64))


def kronecker(
    scale: int,
    edge_factor: int = 16,
    seed: SeedLike = None,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """Graph500-style stochastic Kronecker / R-MAT generator (the
    paper's *kron_g500-simple-logn19* class).

    ``n = 2**scale`` vertices, ``edge_factor * n`` sampled arcs before
    dedup.  Default (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) follows the
    Graph500 specification; vertex ids are randomly permuted so that
    degree correlates with nothing observable.
    """
    rng = default_rng(seed)
    if scale < 1 or scale > 30:
        raise ValueError(f"scale must be in [1, 30], got {scale}")
    if edge_factor < 1:
        raise ValueError(f"edge_factor must be >= 1, got {edge_factor}")
    d = 1.0 - (a + b + c)
    if min(a, b, c, d) < 0:
        raise ValueError("R-MAT probabilities must be non-negative and sum <= 1")
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_norm = a / ab if ab > 0 else 0.5
    c_norm = c / (c + d) if (c + d) > 0 else 0.5
    for _ in range(scale):
        src <<= 1
        dst <<= 1
        r_bit = rng.random(m)
        go_down = r_bit >= ab  # lower half of the adjacency matrix
        r_col = rng.random(m)
        right = np.where(go_down, r_col >= c_norm, r_col >= a_norm)
        src += go_down
        dst += right
    perm = rng.permutation(n)
    return CSRGraph.from_edges(n, np.column_stack([perm[src], perm[dst]]))


def random_triangulation(n: int, seed: SeedLike = None) -> CSRGraph:
    """Delaunay triangulation of *n* uniform random points in the unit
    square (the paper's *delaunay_n20* class: planar, bounded degree,
    large diameter)."""
    from scipy.spatial import Delaunay  # deferred: scipy.spatial is heavy

    rng = default_rng(seed)
    if n < 3:
        raise ValueError(f"need n >= 3 points, got {n}")
    points = rng.random((n, 2))
    tri = Delaunay(points)
    simplices = tri.simplices
    edges = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    ).astype(np.int64)
    return CSRGraph.from_edges(n, edges)


def router_level(n: int, seed: SeedLike = None) -> CSRGraph:
    """Hierarchical internet topology (the paper's *caidaRouterLevel*
    class: sparse, heavy-tailed, hierarchical).

    Three tiers — core (1%), distribution (19%), access (80%).  Core
    routers form a dense random mesh; distribution routers multi-home to
    2–4 cores and peer laterally; access routers attach to 1–2
    distribution routers.  Average degree lands near caida's ~6.3
    arcs/vertex (m/n ≈ 3.2).
    """
    rng = default_rng(seed)
    if n < 20:
        raise ValueError(f"router_level needs n >= 20, got {n}")
    n_core = max(3, n // 100)
    n_dist = max(5, (19 * n) // 100)
    core = np.arange(n_core)
    dist = np.arange(n_core, n_core + n_dist)
    access = np.arange(n_core + n_dist, n)
    edges = []
    # Core mesh: each core router peers with ~half the others.
    for u in core:
        peers = rng.choice(n_core, size=max(2, n_core // 2), replace=False)
        edges.extend((int(u), int(p)) for p in peers if p != u)
    # Distribution: multi-home to cores, occasional lateral peering.
    for u in dist:
        homes = rng.choice(
            core, size=min(n_core, int(rng.integers(2, 5))), replace=False
        )
        edges.extend((int(u), int(h)) for h in homes)
        if rng.random() < 0.3 and n_dist > 1:
            peer = int(dist[rng.integers(0, n_dist)])
            if peer != u:
                edges.append((int(u), peer))
    # Access: attach to 1-2 distribution routers.
    for u in access:
        ups = rng.choice(dist, size=int(rng.integers(1, 3)), replace=False)
        edges.extend((int(u), int(h)) for h in ups)
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64))


def web_crawl(n: int, seed: SeedLike = None) -> CSRGraph:
    """Host-structured web graph (the paper's *eu-2005* class: dense,
    power-law, locally clustered).

    Vertices are partitioned into hosts with heavy-tailed sizes; pages
    within a host link densely (navigation templates), and hosts link to
    popular external pages preferentially.  Average degree targets
    eu-2005's m/n ≈ 19.
    """
    rng = default_rng(seed)
    if n < 20:
        raise ValueError(f"web_crawl needs n >= 20, got {n}")
    # Heavy-tailed host sizes via a Zipf-ish draw clipped to [2, n/4].
    sizes = []
    remaining = n
    while remaining > 0:
        size = int(min(remaining, max(2, rng.pareto(1.2) * 4)))
        size = min(size, max(2, n // 4))
        sizes.append(size)
        remaining -= size
    edges = []
    start = 0
    host_ranges = []
    for size in sizes:
        host_ranges.append((start, start + size))
        members = np.arange(start, start + size, dtype=np.int64)
        # Intra-host: hub-and-spoke plus random template links.
        hub = members[0]
        edges.extend((int(hub), int(v)) for v in members[1:])
        extra = min(size * 6, size * (size - 1) // 2)
        if extra > 0 and size > 2:
            us = rng.integers(start, start + size, size=extra)
            vs = rng.integers(start, start + size, size=extra)
            edges.extend(
                (int(u), int(v)) for u, v in zip(us, vs) if u != v
            )
        start += size
    # Inter-host preferential links toward low ids (older = popular).
    n_inter = 6 * len(sizes)
    for _ in range(n_inter):
        u = int(rng.integers(0, n))
        v = int(n * rng.random() ** 3)  # skew toward popular pages
        if u != v:
            edges.append((u, v))
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64))


def co_papers(
    n: int, papers_per_author: float = 1.5, authors_per_paper: float = 4.0,
    seed: SeedLike = None,
) -> CSRGraph:
    """Co-authorship affiliation network (the paper's *coPapersCiteseer*
    class: very high clustering and average degree, m/n ≈ 37).

    Papers are cliques over their author sets; authors are drawn
    preferentially (prolific authors write more), which yields the
    heavy-tailed degree distribution and near-1 local clustering typical
    of co-paper graphs.
    """
    rng = default_rng(seed)
    if n < 10:
        raise ValueError(f"co_papers needs n >= 10, got {n}")
    n_papers = max(1, int(n * papers_per_author))
    repeated = list(range(n))  # every author gets base probability
    edges = []
    for _ in range(n_papers):
        k = 2 + int(rng.poisson(max(0.0, authors_per_paper - 2)))
        k = min(k, 12)  # cap pathological mega-cliques
        authors = set()
        while len(authors) < k:
            if rng.random() < 0.7:
                authors.add(repeated[int(rng.integers(0, len(repeated)))])
            else:
                authors.add(int(rng.integers(0, n)))
        authors = sorted(authors)
        repeated.extend(authors)
        for i, u in enumerate(authors):
            for v in authors[i + 1 :]:
                edges.append((u, v))
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64))
