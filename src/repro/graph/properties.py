"""Structural graph analysis used to characterize the benchmark suite.

`analyze` reports the quantities Table I (and DESIGN.md §3) cares
about: size, degree statistics, connectivity, an approximate diameter
(double-sweep lower bound), and a sampled average local clustering
coefficient.  These let EXPERIMENTS.md demonstrate that each generated
suite graph matches its DIMACS class signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph, DIST_INF
from repro.utils.prng import SeedLike, default_rng


@dataclass(frozen=True)
class GraphProperties:
    """Summary statistics of one graph (see :func:`analyze`)."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    num_components: int
    largest_component_frac: float
    approx_diameter: int
    avg_clustering: float

    def row(self) -> tuple:
        """Tuple for table rendering."""
        return (
            self.num_vertices,
            self.num_edges,
            self.mean_degree,
            self.max_degree,
            self.num_components,
            self.approx_diameter,
            self.avg_clustering,
        )


def approximate_diameter(graph: CSRGraph, sweeps: int = 4, seed: SeedLike = 0) -> int:
    """Double-sweep diameter lower bound of the largest component.

    BFS from a random vertex, then repeatedly BFS from the farthest
    vertex found; returns the largest eccentricity observed.  Exact on
    trees, and a tight lower bound in practice.
    """
    if graph.num_vertices == 0:
        return 0
    rng = default_rng(seed)
    v = int(rng.integers(0, graph.num_vertices))
    best = 0
    for _ in range(max(1, sweeps)):
        dist = graph.bfs_distances(v)
        reach = dist != DIST_INF
        if not np.any(reach):
            break
        far = int(np.argmax(np.where(reach, dist, -1)))
        ecc = int(dist[far])
        if ecc <= best and ecc > 0:
            break
        best = max(best, ecc)
        v = far
    return best


def average_clustering(
    graph: CSRGraph, samples: Optional[int] = 2000, seed: SeedLike = 0
) -> float:
    """Mean local clustering coefficient.

    Exact when ``samples`` is None or >= n; otherwise estimated over a
    uniform vertex sample (the suite graphs are large enough that the
    exact triangle count is not worth the time in tests).
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    if samples is None or samples >= n:
        vertices = np.arange(n)
    else:
        rng = default_rng(seed)
        vertices = rng.choice(n, size=samples, replace=False)
    rng = default_rng(seed)
    total = 0.0
    for v in vertices:
        nbrs = graph.neighbors(int(v))
        deg = nbrs.size
        if deg < 2:
            continue
        if deg <= 128:
            # Exact: count edges among neighbors with sorted-array
            # membership tests (O(deg^2 log deg)).
            links = 0
            for w in nbrs:
                wn = graph.neighbors(int(w))
                links += int(
                    np.searchsorted(wn, nbrs, side="right").sum()
                    - np.searchsorted(wn, nbrs, side="left").sum()
                )
            total += links / (deg * (deg - 1))
        else:
            # Hubs: estimate the local coefficient from sampled
            # neighbor pairs — exact counting is O(deg^2) and scale-free
            # suite graphs have 10k+-degree hubs.
            trials = 256
            a = nbrs[rng.integers(0, deg, trials)]
            b = nbrs[rng.integers(0, deg, trials)]
            valid = a != b
            hits = 0
            for x, y in zip(a[valid], b[valid]):
                wn = graph.neighbors(int(x))
                idx = np.searchsorted(wn, y)
                hits += bool(idx < wn.size and wn[idx] == y)
            total += hits / max(1, int(valid.sum()))
    return float(total / len(vertices))


def analyze(
    graph: CSRGraph,
    clustering_samples: Optional[int] = 2000,
    seed: SeedLike = 0,
) -> GraphProperties:
    """Compute the :class:`GraphProperties` summary of *graph*."""
    degrees = graph.degrees
    labels = graph.connected_components()
    _, counts = np.unique(labels, return_counts=True)
    n = graph.num_vertices
    return GraphProperties(
        num_vertices=n,
        num_edges=graph.num_edges,
        min_degree=int(degrees.min()) if n else 0,
        max_degree=int(degrees.max()) if n else 0,
        mean_degree=float(degrees.mean()) if n else 0.0,
        num_components=int(counts.size),
        largest_component_frac=float(counts.max() / n) if n else 0.0,
        approx_diameter=approximate_diameter(graph, seed=seed),
        avg_clustering=average_clustering(graph, clustering_samples, seed=seed),
    )
