"""Graph serialization: DIMACS-10 (METIS), edge list, and NumPy npz.

The paper's inputs come from the 10th DIMACS implementation challenge,
which distributes graphs in METIS format — a header line ``n m`` and
then one line per vertex listing its (1-indexed) neighbors.  Users who
download those files can load them with :func:`load_dimacs_metis`;
everything else in the repo uses the synthetic suite.
"""

from __future__ import annotations

import os
from typing import List, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.atomicio import atomic_write

PathLike = Union[str, "os.PathLike[str]"]


def save_dimacs_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write *graph* in METIS / DIMACS-10 format (1-indexed).

    The write is atomic: an interrupted save leaves any previous file
    at *path* intact rather than a truncated hybrid.
    """
    with atomic_write(path, "w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            fh.write(" ".join(str(int(w) + 1) for w in graph.neighbors(v)) + "\n")


def load_dimacs_metis(path: PathLike) -> CSRGraph:
    """Read a METIS / DIMACS-10 graph file.

    Handles comment lines (``%``), the optional fmt field (only fmt=0 /
    unweighted graphs are supported), and blank adjacency lines for
    isolated vertices.
    """
    with open(path) as fh:
        lines = [ln.rstrip("\n") for ln in fh if not ln.startswith("%")]
    if not lines:
        raise ValueError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError(f"{path}: malformed METIS header {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    if len(header) >= 3 and int(header[2]) != 0:
        raise ValueError(f"{path}: weighted METIS graphs are not supported")
    if len(lines) - 1 < n:
        raise ValueError(f"{path}: expected {n} adjacency lines, got {len(lines) - 1}")
    edges: List[tuple] = []
    for v in range(n):
        for token in lines[1 + v].split():
            w = int(token) - 1
            if not 0 <= w < n:
                raise ValueError(f"{path}: neighbor {token} out of range on line {v + 2}")
            if v < w:  # each undirected edge appears on both lines
                edges.append((v, w))
    graph = CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    if graph.num_edges != m:
        raise ValueError(
            f"{path}: header declares {m} edges but file contains {graph.num_edges}"
        )
    return graph


def save_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write one ``u v`` pair per line (0-indexed, canonical order).

    Atomic: the rows land in a temp file renamed over *path*.
    """
    with atomic_write(path, "w") as fh:
        np.savetxt(fh, graph.edge_list(), fmt="%d")


def load_edge_list(path: PathLike, num_vertices: int = 0) -> CSRGraph:
    """Read a whitespace-separated edge list.

    ``num_vertices`` may be given explicitly (to include trailing
    isolated vertices); otherwise it is ``max id + 1``.
    """
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)  # empty file is fine
        data = np.loadtxt(path, dtype=np.int64, ndmin=2)
    if data.size == 0:
        return CSRGraph.empty(num_vertices)
    if data.shape[1] != 2:
        raise ValueError(f"{path}: expected 2 columns, got {data.shape[1]}")
    n = max(num_vertices, int(data.max()) + 1)
    return CSRGraph.from_edges(n, data)


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Binary snapshot (fastest round trip, used for caching suites).

    Atomic: readers observe either the old snapshot or the new one.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"  # np.savez appends the suffix; keep that contract
    with atomic_write(path, "wb") as fh:
        np.savez_compressed(
            fh, row_offsets=graph.row_offsets, col_indices=graph.col_indices
        )


def load_npz(path: PathLike) -> CSRGraph:
    """Read a graph written by :func:`save_npz`."""
    with np.load(path) as data:
        return CSRGraph(data["row_offsets"], data["col_indices"])
