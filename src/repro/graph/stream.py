"""Timestamped edge streams for throughput experiments.

The paper's motivation (§I): "The tremendous volume of updates to
social networks and the web demands a high throughput solution that can
process many updates in a given unit time."  :class:`EdgeStream` models
that workload — a time-ordered sequence of insertions/deletions — and
:func:`replay` drives a dynamic engine through it, reporting the
sustained update throughput under the engine's execution model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.utils.prng import SeedLike, default_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bc.engine import DynamicBC, UpdateReport

INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped update."""

    time: float
    u: int
    v: int
    op: str = INSERT

    def __post_init__(self) -> None:
        if self.op not in (INSERT, DELETE):
            raise ValueError(f"op must be '{INSERT}' or '{DELETE}', got {self.op!r}")
        if self.u == self.v:
            raise ValueError(f"self loop ({self.u}, {self.v}) in stream")


@dataclass
class EdgeStream:
    """A time-ordered sequence of edge events."""

    events: List[EdgeEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        times = [e.time for e in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("events must be ordered by non-decreasing time")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[EdgeEvent]:
        return iter(self.events)

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].time - self.events[0].time

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def poisson_growth(
        cls,
        graph: CSRGraph,
        count: int,
        rate: float = 1.0,
        seed: SeedLike = None,
    ) -> "EdgeStream":
        """*count* random new-edge insertions with exponential
        inter-arrival times at *rate* events per unit time."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        rng = default_rng(seed)
        pairs = graph.undirected_non_edges(rng, count)
        rng.shuffle(pairs, axis=0)
        times = np.cumsum(rng.exponential(1.0 / rate, size=count))
        return cls([
            EdgeEvent(float(t), int(u), int(v))
            for t, (u, v) in zip(times, pairs.tolist())
        ])

    @classmethod
    def removal_reinsertion(
        cls,
        dyn: DynamicGraph,
        count: int,
        rate: float = 1.0,
        seed: SeedLike = None,
    ) -> "EdgeStream":
        """The paper's §IV protocol as a stream: remove *count* random
        edges from *dyn* (mutating it) and return their re-insertions."""
        rng = default_rng(seed)
        removed = dyn.remove_random_edges(rng, count)
        times = np.cumsum(rng.exponential(1.0 / max(rate, 1e-12), size=count))
        return cls([
            EdgeEvent(float(t), int(u), int(v))
            for t, (u, v) in zip(times, removed.tolist())
        ])

    @classmethod
    def churn(
        cls,
        graph: CSRGraph,
        count: int,
        delete_fraction: float = 0.3,
        rate: float = 1.0,
        seed: SeedLike = None,
    ) -> "EdgeStream":
        """Mixed insert/delete stream that keeps the graph simple.

        Tracks the evolving edge set so deletions always target a live
        edge and insertions a live non-edge.
        """
        if not 0 <= delete_fraction <= 1:
            raise ValueError("delete_fraction must be in [0, 1]")
        rng = default_rng(seed)
        n = graph.num_vertices
        live = {tuple(e) for e in graph.edge_list().tolist()}
        events: List[EdgeEvent] = []
        t = 0.0
        guard = 0
        while len(events) < count:
            guard += 1
            if guard > 100 * count + 1000:
                raise RuntimeError("could not build churn stream")
            t += float(rng.exponential(1.0 / rate))
            do_delete = live and rng.random() < delete_fraction
            if do_delete:
                idx = int(rng.integers(0, len(live)))
                u, v = sorted(live)[idx]
                live.remove((u, v))
                events.append(EdgeEvent(t, u, v, DELETE))
            else:
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u == v:
                    continue
                key = (min(u, v), max(u, v))
                if key in live:
                    continue
                live.add(key)
                events.append(EdgeEvent(t, key[0], key[1], INSERT))
        return cls(events)

    # ------------------------------------------------------------------
    # Persistence (CSV: time,u,v,op — loadable into spreadsheets too)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the stream as ``time,u,v,op`` CSV."""
        with open(path, "w") as fh:
            fh.write("time,u,v,op\n")
            for e in self.events:
                fh.write(f"{e.time!r},{e.u},{e.v},{e.op}\n")

    @classmethod
    def load(cls, path) -> "EdgeStream":
        """Read a stream written by :meth:`save` (header required)."""
        events = []
        with open(path) as fh:
            header = fh.readline().strip()
            if header != "time,u,v,op":
                raise ValueError(
                    f"{path}: expected header 'time,u,v,op', got {header!r}"
                )
            for lineno, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                parts = line.split(",")
                if len(parts) != 4:
                    raise ValueError(f"{path}:{lineno}: malformed row {line!r}")
                events.append(
                    EdgeEvent(float(parts[0]), int(parts[1]), int(parts[2]),
                              parts[3])
                )
        return cls(events)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def windows(self, width: float) -> Iterator[Tuple[float, List[EdgeEvent]]]:
        """Group events into half-open time windows ``[k*width, (k+1)*width)``.

        Yields ``(window_start, events)`` for non-empty windows.
        """
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        bucket: List[EdgeEvent] = []
        current = None
        for e in self.events:
            k = int(e.time // width)
            if current is None:
                current = k
            if k != current:
                if bucket:
                    yield current * width, bucket
                bucket = []
                current = k
            bucket.append(e)
        if bucket and current is not None:
            yield current * width, bucket


@dataclass
class ReplayResult:
    """Outcome of driving an engine through a stream."""

    reports: List["UpdateReport"]
    simulated_seconds: float
    wall_seconds: float

    @property
    def updates_per_second(self) -> float:
        """Sustained throughput under the engine's execution model —
        the 'high throughput solution' headline number."""
        if self.simulated_seconds <= 0:
            return float("inf")
        return len(self.reports) / self.simulated_seconds


def replay(engine: "DynamicBC", stream: EdgeStream) -> ReplayResult:
    """Apply every event of *stream* to *engine* in order."""
    from repro.utils.timing import WallTimer

    reports = []
    timer = WallTimer()
    with timer:
        for event in stream:
            if event.op == INSERT:
                reports.append(engine.insert_edge(event.u, event.v))
            else:
                reports.append(engine.delete_edge(event.u, event.v))
    return ReplayResult(
        reports=reports,
        simulated_seconds=float(sum(r.simulated_seconds for r in reports)),
        wall_seconds=timer.elapsed,
    )
