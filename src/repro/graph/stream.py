"""Timestamped edge streams for throughput experiments.

The paper's motivation (§I): "The tremendous volume of updates to
social networks and the web demands a high throughput solution that can
process many updates in a given unit time."  :class:`EdgeStream` models
that workload — a time-ordered sequence of insertions/deletions — and
:func:`replay` drives a dynamic engine through it, reporting the
sustained update throughput under the engine's execution model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.utils.prng import SeedLike, default_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bc.engine import DynamicBC, UpdateReport
    from repro.resilience.guards import GuardEvent, GuardPolicy

INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped update."""

    time: float
    u: int
    v: int
    op: str = INSERT

    def __post_init__(self) -> None:
        if self.op not in (INSERT, DELETE):
            raise ValueError(f"op must be '{INSERT}' or '{DELETE}', got {self.op!r}")
        if self.u == self.v:
            raise ValueError(f"self loop ({self.u}, {self.v}) in stream")


@dataclass
class EdgeStream:
    """A time-ordered sequence of edge events."""

    events: List[EdgeEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        times = [e.time for e in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("events must be ordered by non-decreasing time")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[EdgeEvent]:
        return iter(self.events)

    @property
    def duration(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].time - self.events[0].time

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def poisson_growth(
        cls,
        graph: CSRGraph,
        count: int,
        rate: float = 1.0,
        seed: SeedLike = None,
    ) -> "EdgeStream":
        """*count* random new-edge insertions with exponential
        inter-arrival times at *rate* events per unit time."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        rng = default_rng(seed)
        pairs = graph.undirected_non_edges(rng, count)
        rng.shuffle(pairs, axis=0)
        times = np.cumsum(rng.exponential(1.0 / rate, size=count))
        return cls([
            EdgeEvent(float(t), int(u), int(v))
            for t, (u, v) in zip(times, pairs.tolist())
        ])

    @classmethod
    def removal_reinsertion(
        cls,
        dyn: DynamicGraph,
        count: int,
        rate: float = 1.0,
        seed: SeedLike = None,
    ) -> "EdgeStream":
        """The paper's §IV protocol as a stream: remove *count* random
        edges from *dyn* (mutating it) and return their re-insertions."""
        rng = default_rng(seed)
        removed = dyn.remove_random_edges(rng, count)
        times = np.cumsum(rng.exponential(1.0 / max(rate, 1e-12), size=count))
        return cls([
            EdgeEvent(float(t), int(u), int(v))
            for t, (u, v) in zip(times, removed.tolist())
        ])

    @classmethod
    def churn(
        cls,
        graph: CSRGraph,
        count: int,
        delete_fraction: float = 0.3,
        rate: float = 1.0,
        seed: SeedLike = None,
    ) -> "EdgeStream":
        """Mixed insert/delete stream that keeps the graph simple.

        Tracks the evolving edge set so deletions always target a live
        edge and insertions a live non-edge.
        """
        if not 0 <= delete_fraction <= 1:
            raise ValueError("delete_fraction must be in [0, 1]")
        rng = default_rng(seed)
        n = graph.num_vertices
        live = {tuple(e) for e in graph.edge_list().tolist()}
        events: List[EdgeEvent] = []
        t = 0.0
        guard = 0
        while len(events) < count:
            guard += 1
            if guard > 100 * count + 1000:
                raise RuntimeError("could not build churn stream")
            t += float(rng.exponential(1.0 / rate))
            do_delete = live and rng.random() < delete_fraction
            if do_delete:
                idx = int(rng.integers(0, len(live)))
                u, v = sorted(live)[idx]
                live.remove((u, v))
                events.append(EdgeEvent(t, u, v, DELETE))
            else:
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u == v:
                    continue
                key = (min(u, v), max(u, v))
                if key in live:
                    continue
                live.add(key)
                events.append(EdgeEvent(t, key[0], key[1], INSERT))
        return cls(events)

    # ------------------------------------------------------------------
    # Persistence (CSV: time,u,v,op — loadable into spreadsheets too)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the stream as ``time,u,v,op`` CSV.

        The write is atomic (temporary file in the same directory, then
        :func:`os.replace`), so a crash mid-save never leaves a
        truncated stream under the target name.
        """
        path = os.fspath(path)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w") as fh:
                fh.write("time,u,v,op\n")
                for e in self.events:
                    fh.write(f"{e.time!r},{e.u},{e.v},{e.op}\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @classmethod
    def load(cls, path) -> "EdgeStream":
        """Read a stream written by :meth:`save` (header required).

        Every malformed row is rejected with a ``path:lineno`` message
        naming the offending field — an invalid op, a negative or
        non-integer vertex id, a bad timestamp, a self loop — never a
        raw parsing traceback.
        """
        events = []
        with open(path) as fh:
            header = fh.readline().strip()
            if header != "time,u,v,op":
                raise ValueError(
                    f"{path}: expected header 'time,u,v,op', got {header!r}"
                )
            for lineno, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                parts = line.split(",")
                if len(parts) != 4:
                    raise ValueError(f"{path}:{lineno}: malformed row {line!r}")
                where = f"{path}:{lineno}"
                try:
                    t = float(parts[0])
                except ValueError:
                    raise ValueError(
                        f"{where}: invalid timestamp {parts[0]!r}"
                    ) from None
                ids = []
                for name, token in (("u", parts[1]), ("v", parts[2])):
                    try:
                        vertex = int(token)
                    except ValueError:
                        raise ValueError(
                            f"{where}: invalid vertex id {name}={token!r}"
                        ) from None
                    if vertex < 0:
                        raise ValueError(
                            f"{where}: negative vertex id {name}={vertex}"
                        )
                    ids.append(vertex)
                op = parts[3]
                if op not in (INSERT, DELETE):
                    raise ValueError(
                        f"{where}: invalid op {op!r} "
                        f"(expected {INSERT!r} or {DELETE!r})"
                    )
                try:
                    events.append(EdgeEvent(t, ids[0], ids[1], op))
                except ValueError as exc:
                    raise ValueError(f"{where}: {exc}") from None
        return cls(events)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def windows(self, width: float) -> Iterator[Tuple[float, List[EdgeEvent]]]:
        """Group events into half-open time windows ``[k*width, (k+1)*width)``.

        Yields ``(window_start, events)`` for non-empty windows.
        """
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        bucket: List[EdgeEvent] = []
        current = None
        for e in self.events:
            k = int(e.time // width)
            if current is None:
                current = k
            if k != current:
                if bucket:
                    yield current * width, bucket
                bucket = []
                current = k
            bucket.append(e)
        if bucket and current is not None:
            yield current * width, bucket


@dataclass(frozen=True)
class SkippedEvent:
    """One stream event that was not applied, and why.

    ``reason`` is ``"duplicate-insert"`` / ``"missing-edge"`` for
    no-op events, or ``"update-error: ..."`` for an update that failed
    and was rolled back (guarded replay only).
    """

    index: int  #: position in the stream
    u: int
    v: int
    op: str
    reason: str


@dataclass
class ReplayResult:
    """Outcome of driving an engine through a stream."""

    reports: List["UpdateReport"]
    simulated_seconds: float
    wall_seconds: float
    #: events not applied (duplicate inserts, missing deletes, rolled-
    #: back failures), mirroring :attr:`BatchResult.skipped`
    skipped: List[SkippedEvent] = field(default_factory=list)
    #: updates that failed once, rolled back, and succeeded on retry
    recovered: List[SkippedEvent] = field(default_factory=list)
    #: guard detections/repairs/escalations (guarded replay only)
    guard_events: List["GuardEvent"] = field(default_factory=list)
    #: checkpoint files written, in order
    checkpoints: List[str] = field(default_factory=list)
    #: first stream index processed by *this* call (> 0 after resume)
    start_index: int = 0
    #: checkpoint path this run resumed from, if any
    resumed_from: Optional[str] = None

    @property
    def updates_per_second(self) -> float:
        """Sustained throughput under the engine's execution model —
        the 'high throughput solution' headline number.  ``0.0`` for an
        empty (or zero-simulated-cost) replay rather than ``inf``."""
        if not self.reports or self.simulated_seconds <= 0:
            return 0.0
        return len(self.reports) / self.simulated_seconds


def replay(
    engine: "DynamicBC",
    stream: EdgeStream,
    guard: Optional["GuardPolicy"] = None,
    *,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    resume_from=None,
) -> ReplayResult:
    """Apply every event of *stream* to *engine* in order.

    No-op events (inserting an edge that exists, deleting one that
    does not, self loops) are recorded in :attr:`ReplayResult.skipped`
    and the replay keeps going — one bad event must not abort an
    unbounded stream.

    ``guard``
        A :class:`~repro.resilience.guards.GuardPolicy`: spot-checks
        run on the policy's cadence, drifted rows are auto-repaired,
        structural corruption escalates to a full recompute, and every
        action lands in :attr:`ReplayResult.guard_events`.  A guarded
        replay also survives mid-update failures: the transactional
        engine rolls the update back, the event is retried once
        (transient faults recover into :attr:`ReplayResult.recovered`)
        and otherwise recorded as skipped.
    ``checkpoint_every`` / ``checkpoint_dir``
        Write an atomic, checksummed checkpoint after every N-th
        stream event into ``checkpoint_dir`` (required when
        ``checkpoint_every`` is set); paths are recorded in
        :attr:`ReplayResult.checkpoints`.
    ``resume_from``
        Path of a checkpoint written by a previous replay of the *same
        stream*: the engine state is restored in place and the replay
        continues from the recorded cursor, reproducing the
        uninterrupted run's remaining reports and totals bit-for-bit
        (see ``tests/test_resilience_checkpoint.py``).

    Parallel engines: a ``DynamicBC(workers=N)`` replays identically —
    the worker pool's results are reduced in fixed source order, so
    reports, counters, BC scores and checkpoints match the serial run
    bit for bit (``tests/test_parallel.py``); guards, checkpointing and
    the retry-once recovery need no changes.  A worker crash mid-update
    surfaces as the same rolled-back
    :class:`~repro.resilience.errors.UpdateError` a mid-kernel fault
    does, so a guarded replay recovers from it the same way.
    """
    from repro.utils.timing import WallTimer

    start_index = 0
    sim_seconds = 0.0
    applied_before = 0
    resumed_path: Optional[str] = None
    if resume_from is not None:
        # resolve_resume accepts a directory (newest valid retained
        # checkpoint) or a file, and falls back past corrupt files
        # instead of aborting the replay.
        from repro.resilience.checkpoint import resolve_resume

        ckpt, resumed_path, _ = resolve_resume(resume_from)
        ckpt.restore_into(engine)
        start_index = ckpt.event_index
        sim_seconds = ckpt.simulated_prefix
        applied_before = ckpt.applied_count
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        os.makedirs(checkpoint_dir, exist_ok=True)

    active_guard = None
    if guard is not None:
        from repro.resilience.guards import Guard

        active_guard = Guard(engine, guard)

    result = ReplayResult(
        reports=[], simulated_seconds=0.0, wall_seconds=0.0,
        start_index=start_index, resumed_from=resumed_path,
    )
    timer = WallTimer()
    with timer:
        for index, event in enumerate(stream.events[start_index:], start_index):
            report = _apply_event(engine, event, index, result,
                                  retry=active_guard is not None)
            if report is not None:
                result.reports.append(report)
                # Left-fold accumulation: bit-identical to summing the
                # uninterrupted run's reports in order, so a resumed
                # run reproduces the same float total.
                sim_seconds += report.simulated_seconds
            if active_guard is not None:
                active_guard.after_event(index)
            _fold_health_events(engine, index, result, active_guard)
            if checkpoint_every is not None and (index + 1) % checkpoint_every == 0:
                from repro.resilience.checkpoint import save_checkpoint

                path = os.path.join(
                    os.fspath(checkpoint_dir), f"ckpt-{index + 1:08d}.npz"
                )
                save_checkpoint(
                    engine, path,
                    event_index=index + 1,
                    simulated_prefix=sim_seconds,
                    applied_count=applied_before + len(result.reports),
                )
                result.checkpoints.append(path)
    result.simulated_seconds = sim_seconds
    result.wall_seconds = timer.elapsed
    if active_guard is not None:
        # Health events were folded into the guard log in place, so
        # supervision activity and guard activity share one timeline.
        result.guard_events = active_guard.events
    return result


def _fold_health_events(engine, index, result, active_guard) -> None:
    """Fold any worker-pool supervision events the engine accumulated
    during this stream event into the guard-event log (or directly
    into the result when the replay is unguarded), stamped with the
    stream index they occurred under."""
    drain = getattr(engine, "drain_health_events", None)
    if drain is None:
        return
    health = drain()
    if not health:
        return
    from repro.resilience.guards import HEALTH, GuardEvent

    sink = active_guard.events if active_guard is not None \
        else result.guard_events
    for ev in health:
        sink.append(
            GuardEvent(index, HEALTH, ev.action, -1,
                       f"[{ev.level}] {ev.detail}")
        )


def _apply_event(
    engine: "DynamicBC", event: EdgeEvent, index: int, result: ReplayResult,
    retry: bool,
) -> Optional["UpdateReport"]:
    """Apply one stream event; returns its report or ``None`` when the
    event was skipped (recorded in *result*)."""
    from repro.resilience.errors import UpdateError

    def _once():
        if event.op == INSERT:
            return engine.insert_edge(event.u, event.v)
        return engine.delete_edge(event.u, event.v)

    try:
        return _once()
    except ValueError:
        reason = "duplicate-insert" if event.op == INSERT else "missing-edge"
        result.skipped.append(
            SkippedEvent(index, event.u, event.v, event.op, reason)
        )
        return None
    except UpdateError as exc:
        if not retry:
            raise
        # The engine rolled back, so the event can be retried safely;
        # a transient fault recovers here, a deterministic one is
        # recorded and the stream moves on.
        try:
            report = _once()
        except (ValueError, UpdateError) as retry_exc:
            result.skipped.append(
                SkippedEvent(index, event.u, event.v, event.op,
                             f"update-error: {retry_exc}")
            )
            return None
        result.recovered.append(
            SkippedEvent(index, event.u, event.v, event.op,
                         f"recovered after rollback: {exc}")
        )
        return report
