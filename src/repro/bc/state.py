"""Per-source auxiliary state for dynamic BC.

The dynamic algorithm preserves, for every source vertex ``s``, the
distances ``d_s(t)``, shortest-path counts ``σ_st`` and dependencies
``δ_s(t)`` for all ``t`` (paper §II-D) — O(kn) space for k sources.
:class:`BCState` owns those arrays plus the BC scores and knows how to
build itself from scratch (Brandes) and verify itself against one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bc.brandes import single_source_state
from repro.graph.csr import CSRGraph
from repro.utils.prng import SeedLike, default_rng, sample_without_replacement


class BCState:
    """Stored state: ``d``, ``sigma``, ``delta`` are ``(k, n)`` arrays
    (one row per source), ``bc`` is the shared ``(n,)`` score vector."""

    def __init__(
        self,
        sources: np.ndarray,
        d: np.ndarray,
        sigma: np.ndarray,
        delta: np.ndarray,
        bc: np.ndarray,
    ) -> None:
        sources = np.asarray(sources, dtype=np.int64)
        k = sources.size
        n = bc.size
        for name, arr, dtype in (
            ("d", d, np.int64),
            ("sigma", sigma, np.float64),
            ("delta", delta, np.float64),
        ):
            if arr.shape != (k, n):
                raise ValueError(f"{name} must have shape ({k}, {n}), got {arr.shape}")
            if arr.dtype != dtype:
                raise ValueError(f"{name} must be {dtype}, got {arr.dtype}")
        if np.unique(sources).size != k:
            raise ValueError("sources must be distinct")
        self.sources = sources
        self.d = d
        self.sigma = sigma
        self.delta = delta
        self.bc = bc

    # ------------------------------------------------------------------
    @property
    def num_sources(self) -> int:
        return int(self.sources.size)

    @property
    def num_vertices(self) -> int:
        return int(self.bc.size)

    @classmethod
    def compute(cls, graph: CSRGraph, sources: Sequence[int]) -> "BCState":
        """Build the state from scratch with Brandes (the "static
        recomputation" the dynamic algorithm avoids)."""
        sources = np.asarray(sorted(int(s) for s in sources), dtype=np.int64)
        n = graph.num_vertices
        k = sources.size
        d = np.empty((k, n), dtype=np.int64)
        sigma = np.empty((k, n), dtype=np.float64)
        delta = np.empty((k, n), dtype=np.float64)
        bc = np.zeros(n, dtype=np.float64)
        for i, s in enumerate(sources):
            # Brandes writes straight into row i (no transient
            # per-source triple), so peak memory during the build is
            # the retained state plus O(n + m) BFS scratch.
            single_source_state(graph, int(s), out=(d[i], sigma[i], delta[i]))
            delta[i, int(s)] = 0.0
            bc += delta[i]
        return cls(sources, d, sigma, delta, bc)

    @classmethod
    def compute_with_random_sources(
        cls, graph: CSRGraph, num_sources: int, seed: SeedLike = None
    ) -> "BCState":
        """Sample ``num_sources`` distinct sources uniformly (the
        SSCA-style approximation protocol of §IV) and compute."""
        rng = default_rng(seed)
        k = min(num_sources, graph.num_vertices)
        sources = sample_without_replacement(rng, graph.num_vertices, k)
        return cls.compute(graph, sources)

    # ------------------------------------------------------------------
    def copy(self) -> "BCState":
        """Deep copy (sources, state matrices, and scores)."""
        return BCState(
            self.sources.copy(),
            self.d.copy(),
            self.sigma.copy(),
            self.delta.copy(),
            self.bc.copy(),
        )

    def rebuild_bc(self) -> None:
        """Restore the ``bc = Σ_i delta_i`` invariant by left-folding
        the stored dependency rows in source order — exactly the
        accumulation :meth:`compute` performs, so a state with clean
        rows becomes bit-identical to a from-scratch build.  Used by
        the resilience guards after repairing corrupted rows."""
        self.bc[:] = 0.0
        for i in range(self.num_sources):
            self.bc += self.delta[i]

    def max_abs_error(self, other: "BCState") -> float:
        """Largest state discrepancy vs *other* (same sources assumed);
        used by the self-check machinery and the test-suite oracles."""
        if not np.array_equal(self.sources, other.sources):
            raise ValueError("states track different source sets")
        return float(
            max(
                np.abs(self.d - other.d).max(initial=0),
                np.abs(self.sigma - other.sigma).max(initial=0.0),
                np.abs(self.delta - other.delta).max(initial=0.0),
                np.abs(self.bc - other.bc).max(initial=0.0),
            )
        )

    def verify_against(self, graph: CSRGraph, atol: float = 1e-6) -> None:
        """Raise :class:`AssertionError` unless this state matches a
        from-scratch recomputation on *graph* (paper §IV: "we compare
        the results of the baseline and our algorithms to ensure that
        both yield the same results")."""
        fresh = BCState.compute(graph, self.sources)
        if not np.array_equal(self.d, fresh.d):
            bad = np.argwhere(self.d != fresh.d)
            raise AssertionError(f"distance mismatch at (source_idx, vertex) {bad[:5]}")
        for name in ("sigma", "delta", "bc"):
            mine, ref = getattr(self, name), getattr(fresh, name)
            if not np.allclose(mine, ref, atol=atol, rtol=1e-9):
                idx = np.argwhere(~np.isclose(mine, ref, atol=atol, rtol=1e-9))
                raise AssertionError(f"{name} mismatch at {idx[:5]}")

    def __repr__(self) -> str:
        return f"BCState(k={self.num_sources}, n={self.num_vertices})"
