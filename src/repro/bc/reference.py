"""Naive reference implementations (test oracles).

These are deliberately simple, literal transcriptions — pure-Python
queues, dictionaries, O(n) scans — used by the test suite to validate
the vectorized implementations.  They are *not* part of the public
performance path.

* :func:`brandes_reference` — Algorithm 1 verbatim (queue + stack +
  predecessor lists).
* :func:`case2_reference` — Algorithm 2 (Green et al.) verbatim,
  including the multi-level queue, returning fresh state arrays.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, DIST_INF


def brandes_reference(graph: CSRGraph, sources=None) -> np.ndarray:
    """Algorithm 1, literal: returns BC scores (not halved)."""
    n = graph.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    iter_sources = range(n) if sources is None else sources
    for s in iter_sources:
        s = int(s)
        # Stage 1: initialization
        S: List[int] = []
        Q: deque = deque()
        P: List[List[int]] = [[] for _ in range(n)]
        d = [int(DIST_INF)] * n
        sigma = [0.0] * n
        delta = [0.0] * n
        d[s] = 0
        sigma[s] = 1.0
        # Stage 2: shortest path calculation
        Q.append(s)
        while Q:
            v = Q.popleft()
            S.append(v)
            for w in graph.neighbors(v):
                w = int(w)
                if d[w] == int(DIST_INF):
                    Q.append(w)
                    d[w] = d[v] + 1
                if d[w] == d[v] + 1:
                    sigma[w] += sigma[v]
                    P[w].append(v)
        # Stage 3: dependency accumulation
        while S:
            w = S.pop()
            for v in P[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != s:
                bc[w] += delta[w]
    return bc


def single_source_reference(
    graph: CSRGraph, s: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(d, sigma, delta) for one source, computed naively.

    ``delta[s]`` is forced to zero, matching the stored-state
    convention of :class:`repro.bc.state.BCState`.
    """
    n = graph.num_vertices
    d = np.full(n, DIST_INF, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    delta = np.zeros(n, dtype=np.float64)
    d[s] = 0
    sigma[s] = 1.0
    Q: deque = deque([s])
    order: List[int] = []
    while Q:
        v = Q.popleft()
        order.append(v)
        for w in graph.neighbors(v):
            w = int(w)
            if d[w] == DIST_INF:
                d[w] = d[v] + 1
                Q.append(w)
            if d[w] == d[v] + 1:
                sigma[w] += sigma[v]
    for w in reversed(order):
        for v in graph.neighbors(w):
            v = int(v)
            if d[v] == d[w] - 1:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
    delta[s] = 0.0
    return d, sigma, delta


def case2_reference(
    graph: CSRGraph,
    s: int,
    d: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    bc: np.ndarray,
    u_high: int,
    u_low: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Algorithm 2 (Green et al.) verbatim for one source.

    The graph must already contain the inserted edge.  Inputs are the
    *old* state vectors (not modified); returns the updated
    ``(sigma, delta, bc)``; distances are unchanged by definition.
    The BC update fires once per popped vertex (the printed pseudocode
    nests it in the predecessor loop; Green et al.'s prose and the
    commit kernel, Alg. 8, apply it once per vertex).
    """
    n = graph.num_vertices
    UNTOUCHED, DOWN_, UP_ = 0, 1, 2
    bc = bc.copy()
    # Stage 1: initialization
    Q: deque = deque()
    QQ: Dict[int, deque] = {}
    t = [UNTOUCHED] * n
    t[u_low] = DOWN_
    sigma_hat = sigma.astype(np.float64).copy()
    sigma_hat[u_low] = sigma[u_low] + sigma[u_high]
    delta_hat = np.zeros(n, dtype=np.float64)
    # Stage 2: shortest path calculation
    Q.append(u_low)
    QQ.setdefault(int(d[u_low]), deque()).append(u_low)
    level = int(d[u_low])
    while Q:
        v = Q.popleft()
        for w in graph.neighbors(v):
            w = int(w)
            if d[w] == d[v] + 1:
                if t[w] == UNTOUCHED:
                    Q.append(w)
                    QQ.setdefault(int(d[w]), deque()).append(w)
                    t[w] = DOWN_
                    level = max(level, int(d[w]))
                sigma_hat[w] += sigma_hat[v] - sigma[v]
    # Stage 3: dependency accumulation
    while level > 0:
        bucket = QQ.get(level, deque())
        while bucket:
            w = bucket.popleft()
            for v in graph.neighbors(w):
                v = int(v)
                if d[w] == d[v] + 1:
                    if t[v] == UNTOUCHED:
                        QQ.setdefault(level - 1, deque()).append(v)
                        t[v] = UP_
                        delta_hat[v] = delta[v]
                    delta_hat[v] += sigma_hat[v] / sigma_hat[w] * (1.0 + delta_hat[w])
                    if t[v] == UP_ and (v != u_high or w != u_low):
                        delta_hat[v] -= sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != s:
                bc[w] += delta_hat[w] - delta[w]
        level -= 1
    sigma_out = sigma_hat
    delta_out = delta.astype(np.float64).copy()
    for v in range(n):
        if t[v] != UNTOUCHED and v != s:
            delta_out[v] = delta_hat[v]
    return sigma_out, delta_out, bc
