"""Brandes' algorithm for betweenness centrality (Algorithm 1).

This is the exact/approximate *static* reference everything else is
validated against, implemented as a vectorized level-synchronous
BFS + dependency accumulation over CSR arrays.

Conventions (matching the paper):

* Undirected graphs are traversed in both directions, so every ordered
  pair (s, t) contributes — scores are **not** halved.  (NetworkX's
  undirected ``betweenness_centrality`` halves; multiply it by 2 to
  compare.)
* Approximate BC processes only ``k`` *source vertices* in the outer
  loop (Brandes & Pich [11]); pass ``sources`` for that.
* σ values are path *counts* held in float64: exact up to 2**53 paths.

The kernels are instrumented for the race sanitizer
(:mod:`repro.sanitize.tracer`): every BFS/accumulation level is a
barrier interval, σ/δ accumulation routes through the declared
:func:`~repro.gpu.primitives.atomic_scatter_add`, and frontier pushes
are checked for level monotonicity.  The hooks are no-ops unless a
tracer is active, and the instrumented math is bit-identical either
way.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.gpu.primitives import atomic_scatter_add
from repro.graph.csr import CSRGraph, DIST_INF
from repro.sanitize import tracer as san
from repro.sanitize.report import SanitizerReport


def single_source_state(
    graph: CSRGraph, source: int,
    out: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[np.ndarray]]:
    """Stages 1–3 of Algorithm 1 for one source.

    Returns ``(d, sigma, delta, levels)`` where ``levels[i]`` is the
    BFS frontier at distance *i* (``levels[0] == [source]``) — the
    level-bucketed equivalent of the stack ``S``.

    ``out`` — optional ``(d, sigma, delta)`` arrays (e.g. rows of the
    ``(k, n)`` state matrices) written in place and returned; callers
    building many sources avoid allocating transient per-source
    vectors, keeping peak memory at the retained state plus O(n + m)
    scratch (the from-scratch builders and the parallel workers all
    pass their state rows directly).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range")
    if out is None:
        d = np.full(n, DIST_INF, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        delta = np.zeros(n, dtype=np.float64)
    else:
        d, sigma, delta = out
        if d.shape != (n,) or sigma.shape != (n,) or delta.shape != (n,):
            raise ValueError(
                f"out rows must each have shape ({n},), got "
                f"{d.shape}/{sigma.shape}/{delta.shape}"
            )
        d[...] = DIST_INF
        sigma[...] = 0.0
        delta[...] = 0.0
    d[source] = 0
    sigma[source] = 1.0

    with san.kernel(f"sssp:{source}"):
        # Stage 2: shortest-path calculation (level-synchronous BFS).
        levels: List[np.ndarray] = [np.array([source], dtype=np.int32)]
        depth = 0
        while True:
            tails, heads = graph.frontier_arcs(levels[depth])
            if tails.size == 0:
                break
            with san.interval("sp", depth):
                san.read("d", heads)
                undiscovered = d[heads] == DIST_INF
                new_nodes = np.unique(heads[undiscovered])
                if new_nodes.size:
                    d[new_nodes] = depth + 1
                    san.write("d", new_nodes, intent="discover")
                on_path = d[heads] == depth + 1
                if np.any(on_path):
                    san.read("sigma", tails[on_path])
                    atomic_scatter_add(
                        sigma, heads[on_path], sigma[tails[on_path]],
                        array="sigma",
                    )
                san.enqueue("Q", new_nodes, depth + 1, distances=d,
                            direction=1)
            if new_nodes.size == 0:
                break
            levels.append(new_nodes.astype(np.int32))
            depth += 1

        # Stage 3: dependency accumulation, deepest level first.  For
        # each DAG arc (w at depth L, predecessor v at L-1):
        #   delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
        for depth in range(len(levels) - 1, 0, -1):
            tails, heads = graph.frontier_arcs(levels[depth])
            with san.interval("dep", depth):
                san.read("d", heads)
                pred = d[heads] == depth - 1
                pt, ph = tails[pred], heads[pred]
                if pt.size:
                    san.read("sigma", ph)
                    san.read("sigma", pt)
                    san.read("delta", pt)
                    atomic_scatter_add(
                        delta, ph, sigma[ph] / sigma[pt] * (1.0 + delta[pt]),
                        array="delta",
                    )
    return d, sigma, delta, levels


def brandes_bc(
    graph: CSRGraph,
    sources: Optional[Sequence[int]] = None,
    normalized: bool = False,
    sanitize: bool = False,
) -> Union[np.ndarray, Tuple[np.ndarray, SanitizerReport]]:
    """Betweenness centrality scores (``float64[n]``).

    ``sources=None`` computes exact BC (all n sources); otherwise only
    the given source vertices are accumulated (approximate BC).
    ``normalized`` divides by ``(n-1)(n-2)``, the number of ordered
    pairs excluding the vertex itself.

    ``sanitize=True`` runs every per-source kernel under the race
    sanitizer and returns ``(bc, SanitizerReport)``; the scores are
    bit-identical to the untraced run.
    """
    if sanitize:
        tracer = san.MemoryTracer()
        with san.tracing(tracer):
            bc = brandes_bc(graph, sources, normalized)
        return bc, tracer.report()
    n = graph.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    iter_sources = range(n) if sources is None else sources
    for s in iter_sources:
        _, _, delta, _ = single_source_state(graph, int(s))
        delta[int(s)] = 0.0
        bc += delta
    if normalized and n > 2:
        bc /= (n - 1) * (n - 2)
    return bc
