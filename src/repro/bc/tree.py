"""Closed-form betweenness centrality for trees (O(n)).

On a tree every pair of vertices has exactly one shortest path, so
BC(v) is determined by the component sizes of ``T - v``:

    BC(v) = (n_reach - 1)(n_reach - 2) - sum_b s_b (s_b - 1)

where ``n_reach`` is the size of v's component and ``s_b`` are the
sizes of the branches hanging off v (ordered-pair convention, matching
:func:`repro.bc.brandes.brandes_bc`).  Forests are handled per
component.

This is both a fast path for tree-like inputs and an independent oracle
the test suite uses against Brandes.  It also demonstrates the
degree-1 structure exploited by Sariyüce et al. [12] (the related-work
heterogeneous approach): on a tree, *all* vertices reduce away.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def is_forest(graph: CSRGraph) -> bool:
    """True when the graph contains no cycle (m = n - #components)."""
    labels = graph.connected_components()
    num_components = np.unique(labels).size
    return graph.num_edges == graph.num_vertices - num_components


def tree_bc(graph: CSRGraph) -> np.ndarray:
    """Exact BC scores of a forest in O(n + m).

    Raises :class:`ValueError` when the graph has a cycle — callers
    should fall back to :func:`repro.bc.brandes.brandes_bc`.
    """
    n = graph.num_vertices
    if not is_forest(graph):
        raise ValueError("tree_bc requires a forest; use brandes_bc instead")
    bc = np.zeros(n, dtype=np.float64)
    if n == 0:
        return bc

    labels = graph.connected_components()
    visited = np.zeros(n, dtype=bool)
    subtree = np.ones(n, dtype=np.int64)

    for root in range(n):
        if visited[root] or labels[root] != root:
            continue
        # Iterative DFS producing a child->parent order for this tree.
        order = []
        parent = {root: -1}
        stack = [root]
        while stack:
            v = stack.pop()
            visited[v] = True
            order.append(v)
            for w in graph.neighbors(v):
                w = int(w)
                if w != parent[v] and w not in parent:
                    parent[w] = v
                    stack.append(w)
        comp_size = len(order)
        # Subtree sizes bottom-up.
        for v in reversed(order):
            p = parent[v]
            if p != -1:
                subtree[p] += subtree[v]
        # Branch decomposition: children subtrees + the "upward" rest.
        for v in order:
            branches = [int(subtree[w]) for w in graph.neighbors(v)
                        if parent.get(int(w), None) == v]
            if parent[v] != -1:
                branches.append(comp_size - int(subtree[v]))
            total_pairs = (comp_size - 1) * (comp_size - 2)
            same_branch = sum(s * (s - 1) for s in branches)
            bc[v] = float(total_pairs - same_branch)
    return bc


def bc_auto(graph: CSRGraph) -> np.ndarray:
    """Dispatch: O(n) closed form for forests, Brandes otherwise."""
    if is_forest(graph):
        return tree_bc(graph)
    from repro.bc.brandes import brandes_bc

    return brandes_bc(graph)
