"""Heterogeneous (CPU + GPU) dynamic BC — §VI future work.

"Further performance improvements can be attained with multi-GPU,
heterogeneous, or distributed implementations of this algorithm."

The coarse-grained parallelism is over independent source vertices
(Fig. 3), so a heterogeneous deployment simply partitions the source
set: the GPU's blocks take most sources, the otherwise-idle CPU core
takes a slice sized to its relative throughput, and both drain
concurrently — the update completes when the slower side finishes.
This mirrors the CPU/GPU work partitioning of Sariyüce et al. [12]
(cited in §II-C) applied to the dynamic analytic.

State is shared (one :class:`~repro.bc.state.BCState`); only the cost
accounting differs per partition, so results remain bit-identical to
the homogeneous engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.bc.accountants import make_accountant
from repro.bc.cases import Case, classify_insertion
from repro.bc.state import BCState
from repro.bc.update_core import adjacent_level_update, distant_level_update
from repro.gpu.costmodel import CostModel, cpu_access_cycles
from repro.gpu.device import CORE_I7_2600K, TESLA_C2075, DeviceSpec
from repro.gpu.executor import schedule_blocks
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.utils.prng import SeedLike


@dataclass
class HybridReport:
    """Timing of one update under the heterogeneous split."""

    edge: tuple
    gpu_seconds: float
    cpu_seconds: float
    simulated_seconds: float  # max of the two sides
    gpu_sources: int
    cpu_sources: int

    @property
    def balance(self) -> float:
        """1.0 = both sides finish together (ideal split)."""
        slow = max(self.gpu_seconds, self.cpu_seconds)
        fast = min(self.gpu_seconds, self.cpu_seconds)
        return fast / slow if slow > 0 else 1.0


class HybridDynamicBC:
    """Dynamic BC with sources partitioned across a GPU and a CPU."""

    def __init__(
        self,
        graph: Union[DynamicGraph, CSRGraph],
        state: BCState,
        gpu_device: DeviceSpec = TESLA_C2075,
        cpu_device: DeviceSpec = CORE_I7_2600K,
        cpu_fraction: Optional[float] = None,
        adaptive: bool = False,
    ) -> None:
        self.graph = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph.from_csr(graph)
        )
        self.state = state
        self.gpu_device = gpu_device
        self.cpu_device = cpu_device
        self.gpu_model = CostModel(gpu_device)
        self.cpu_model = CostModel(cpu_device)
        if cpu_fraction is None:
            cpu_fraction = self._auto_fraction()
        if not 0.0 <= cpu_fraction < 1.0:
            raise ValueError(
                f"cpu_fraction must be in [0, 1), got {cpu_fraction}"
            )
        self.cpu_fraction = cpu_fraction
        self.adaptive = adaptive
        self._set_partition(cpu_fraction)
        self.reports: List[HybridReport] = []

    def _set_partition(self, cpu_fraction: float) -> None:
        k = self.state.num_sources
        n_cpu = int(round(k * cpu_fraction))
        n_cpu = min(n_cpu, k - 1)  # GPU always keeps at least one source
        # CPU takes the tail of the (sorted) source list.
        self._cpu_idx = np.arange(k - n_cpu, k)
        self._gpu_idx = np.arange(0, k - n_cpu)

    @classmethod
    def from_graph(
        cls,
        graph: Union[DynamicGraph, CSRGraph],
        num_sources: int,
        seed: SeedLike = None,
        **kwargs,
    ) -> "HybridDynamicBC":
        snap = graph.snapshot() if isinstance(graph, DynamicGraph) else graph
        state = BCState.compute_with_random_sources(snap, num_sources, seed)
        return cls(graph, state, **kwargs)

    def _auto_fraction(self) -> float:
        """Size the CPU slice by the per-source cost floor.

        Every Case-2/3 source pays at least the O(n) init + commit
        (Algorithms 3 and 8), so the floor is a usable throughput
        proxy: the CPU streams it at core bandwidth with Green et
        al.'s per-update structure setup, while each of the GPU's SMs
        streams it at its per-SM bandwidth — and ``num_sms`` of them
        drain sources concurrently.
        """
        snap = self.graph.snapshot()
        n = snap.num_vertices
        # CPU floor: allocation-heavy init (24 cycles/elem) + commit.
        cpu_floor = (
            n * 24.0 * self.cpu_device.cpi / self.cpu_device.clock_hz
            + n * 45.0 / (self.cpu_device.mem_bandwidth_gbs * 1e9)
        )
        # GPU floor per source on one SM: init+commit traffic.
        gpu_floor = n * 45.0 / (self.gpu_device.sm_mem_gbs * 1e9)
        cpu_rate = 1.0 / cpu_floor if cpu_floor > 0 else 0.0
        gpu_rate = self.gpu_device.num_sms / gpu_floor if gpu_floor > 0 else 0.0
        if cpu_rate + gpu_rate == 0:
            return 0.0
        return float(cpu_rate / (cpu_rate + gpu_rate))

    # ------------------------------------------------------------------
    @property
    def bc_scores(self) -> np.ndarray:
        return self.state.bc

    def insert_edge(self, u: int, v: int) -> HybridReport:
        """Insert edge {u, v}; both partitions update concurrently."""
        if not self.graph.insert_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already present or self loop")
        return self._apply(u, v, "insert", None)

    def delete_edge(self, u: int, v: int) -> HybridReport:
        """Delete edge {u, v} (same semantics as
        :meth:`repro.bc.engine.DynamicBC.delete_edge`)."""
        from repro.bc.cases import classify_deletion

        if not self.graph.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) not present")
        pre = self.graph.snapshot()
        classifications = [
            classify_deletion(self.state.d[i], self.state.sigma[i], pre, u, v)
            for i in range(self.state.num_sources)
        ]
        self.graph.delete_edge(u, v)
        return self._apply(u, v, "delete", classifications)

    def _apply(self, u: int, v: int, operation: str,
               classifications) -> HybridReport:
        snap = self.graph.snapshot()
        st = self.state
        access = cpu_access_cycles(
            self.cpu_device, snap.num_vertices, 2 * snap.num_edges
        )

        def run_partition(indices: np.ndarray, strategy: str):
            per_source = []
            for i in indices:
                s = int(st.sources[i])
                if classifications is None:
                    case, u_high, u_low = classify_insertion(st.d[i], u, v)
                else:
                    case, u_high, u_low = classifications[i]
                acc = make_accountant(
                    strategy, snap.num_vertices, 2 * snap.num_edges,
                    access_cycles=access if strategy == "cpu" else None,
                )
                acc.classify()
                if case == Case.ADJACENT_LEVEL:
                    adjacent_level_update(
                        snap, s, st.d[i], st.sigma[i], st.delta[i], st.bc,
                        u_high, u_low, acc, insert=(operation == "insert"),
                    )
                elif case == Case.DISTANT_LEVEL and operation == "insert":
                    distant_level_update(
                        snap, s, st.d[i], st.sigma[i], st.delta[i], st.bc,
                        u_high, u_low, acc,
                    )
                elif case == Case.DISTANT_LEVEL:
                    self._recompute_source(snap, i, acc)
                model = self.gpu_model if strategy != "cpu" else self.cpu_model
                per_source.append(model.trace_seconds(acc.finish()))
            return per_source

        gpu_per_source = run_partition(self._gpu_idx, "gpu-node")
        cpu_per_source = run_partition(self._cpu_idx, "cpu")
        gpu_time = schedule_blocks(
            gpu_per_source, self.gpu_device, self.gpu_device.num_sms,
            4 * self.gpu_model.launch_overhead_seconds,
        ).total_seconds if len(gpu_per_source) else 0.0
        cpu_time = float(sum(cpu_per_source))
        report = HybridReport(
            edge=(u, v),
            gpu_seconds=gpu_time,
            cpu_seconds=cpu_time,
            simulated_seconds=max(gpu_time, cpu_time),
            gpu_sources=int(self._gpu_idx.size),
            cpu_sources=int(self._cpu_idx.size),
        )
        self.reports.append(report)
        if self.adaptive and report.cpu_sources and report.gpu_sources \
                and report.cpu_seconds > 0 and report.gpu_seconds > 0:
            # Rebalance toward equal finish times using measured
            # *marginal* rates (the fixed kernel-launch overhead is paid
            # regardless of the split, so it is excluded), smoothed to
            # avoid thrashing on noisy single updates.
            gpu_compute = max(
                report.gpu_seconds
                - 4 * self.gpu_model.launch_overhead_seconds,
                1e-12,
            )
            cpu_rate = report.cpu_sources / report.cpu_seconds
            gpu_rate = report.gpu_sources / gpu_compute
            target = cpu_rate / (cpu_rate + gpu_rate)
            self.cpu_fraction = 0.5 * self.cpu_fraction + 0.5 * target
            self._set_partition(self.cpu_fraction)
        return report

    def _recompute_source(self, snap: CSRGraph, i: int, acc) -> None:
        """Distance-increasing deletion fallback: rebuild one row."""
        from repro.bc.brandes import single_source_state

        st = self.state
        s = int(st.sources[i])
        d_new, sigma_new, delta_new, levels = single_source_state(snap, s)
        delta_new[s] = 0.0
        st.bc += delta_new - st.delta[i]
        st.d[i] = d_new
        st.sigma[i] = sigma_new
        st.delta[i] = delta_new
        acc.init(snap.num_vertices)
        for frontier in levels:
            deg = int(snap.degrees[frontier].sum())
            acc.sp_level(frontier=int(frontier.size), arcs=deg,
                         onpath=int(frontier.size), raw_new=0,
                         new=int(frontier.size))
        acc.commit(snap.num_vertices, snap.num_vertices)

    def verify(self, atol: float = 1e-6) -> None:
        """Assert the maintained state matches a scratch recompute."""
        self.state.verify_against(self.graph.snapshot(), atol=atol)

    def __repr__(self) -> str:
        return (
            f"HybridDynamicBC(gpu={self._gpu_idx.size} sources on "
            f"{self.gpu_device.name!r}, cpu={self._cpu_idx.size} sources on "
            f"{self.cpu_device.name!r})"
        )
