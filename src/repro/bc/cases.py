"""Update-scenario classification (paper §II-D-1).

For a source ``s`` and an inserted edge ``(u, v)``, exactly one of
three scenarios holds, keyed by the pre-insertion level gap:

* **Case 1** — ``|d_s(u) - d_s(v)| == 0``: same level (or both
  unreachable).  No distances and no path counts change: *no work*.
* **Case 2** — ``|d_s(u) - d_s(v)| == 1``: adjacent levels.  Distances
  are preserved but σ (and hence δ and BC) may change.
* **Case 3** — ``|d_s(u) - d_s(v)| > 1``: distances change (including
  the component-merge variant where one endpoint was unreachable).

Unreachable vertices carry the :data:`~repro.graph.csr.DIST_INF`
sentinel, so the arithmetic classification below stays correct for the
disconnected sub-variants the paper enumerates.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np

from repro.graph.csr import DIST_INF


class Case(enum.IntEnum):
    """Insertion scenario for one (source, edge) pair."""

    SAME_LEVEL = 1      # no work
    ADJACENT_LEVEL = 2  # sigma changes, distances preserved
    DISTANT_LEVEL = 3   # distances change


class SubCase(enum.Enum):
    """The paper's finer split (§II-D-1): Cases 1 and 3 "can actually
    occur for two slightly different reasons" each."""

    #: Case 1 with u, v, s in one connected component
    SAME_LEVEL_CONNECTED = "1-connected"
    #: Case 1 with neither endpoint reachable from s
    SAME_LEVEL_DISCONNECTED = "1-disconnected"
    #: Case 2 (adjacent levels; always within s's component)
    ADJACENT_LEVEL = "2"
    #: Case 3 with both endpoints reachable (distances shrink)
    DISTANT_LEVEL_CONNECTED = "3-connected"
    #: Case 3 merging a component into s's (one endpoint unreachable)
    DISTANT_LEVEL_MERGE = "3-merge"

    @property
    def case(self) -> Case:
        return Case(int(self.value[0]))


def classify_insertion(d_row: np.ndarray, u: int, v: int) -> Tuple[Case, int, int]:
    """Classify inserting edge ``{u, v}`` for the source owning *d_row*.

    Returns ``(case, u_high, u_low)`` where ``u_high`` is the endpoint
    closer to the source ("higher in the BFS tree") and ``u_low`` the
    farther one.  For Case 1 the order is arbitrary.
    """
    du, dv = int(d_row[u]), int(d_row[v])
    gap = abs(du - dv)
    if gap == 0:
        return Case.SAME_LEVEL, u, v
    high, low = (u, v) if du < dv else (v, u)
    if gap == 1:
        return Case.ADJACENT_LEVEL, high, low
    return Case.DISTANT_LEVEL, high, low


def classify_insertion_detailed(
    d_row: np.ndarray, u: int, v: int
) -> Tuple[SubCase, int, int]:
    """Like :func:`classify_insertion`, but reporting the paper's
    connected/disconnected sub-variants of Cases 1 and 3."""
    case, high, low = classify_insertion(d_row, u, v)
    if case == Case.ADJACENT_LEVEL:
        return SubCase.ADJACENT_LEVEL, high, low
    du, dv = int(d_row[u]), int(d_row[v])
    if case == Case.SAME_LEVEL:
        sub = (
            SubCase.SAME_LEVEL_DISCONNECTED
            if du >= DIST_INF
            else SubCase.SAME_LEVEL_CONNECTED
        )
        return sub, high, low
    sub = (
        SubCase.DISTANT_LEVEL_MERGE
        if max(du, dv) >= DIST_INF
        else SubCase.DISTANT_LEVEL_CONNECTED
    )
    return sub, high, low


def classify_insertion_batch(
    d: np.ndarray, u: int, v: int
) -> np.ndarray:
    """Vectorized classification over all sources at once.

    ``d`` is the ``(k, n)`` distance matrix; returns ``int8[k]`` case
    numbers.  Used by the scenario-distribution study (Fig. 2), where
    only the histogram is needed.
    """
    gap = np.abs(d[:, u] - d[:, v])
    cases = np.full(d.shape[0], int(Case.DISTANT_LEVEL), dtype=np.int8)
    cases[gap == 0] = int(Case.SAME_LEVEL)
    cases[gap == 1] = int(Case.ADJACENT_LEVEL)
    return cases


def classify_insertions_batch(
    d: np.ndarray, u: int, v: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify inserting ``{u, v}`` for **all** k sources in one pass.

    The vectorized analogue of calling :func:`classify_insertion` once
    per row of the ``(k, n)`` distance matrix ``d``: returns
    ``(cases, u_high, u_low)`` arrays (``int8[k]``, ``int64[k]``,
    ``int64[k]``) whose *i*-th entries equal the scalar call on row *i*
    exactly — including the arbitrary ``(u, v)`` endpoint order for
    Case-1 ties.  This is the engine's hot-path classification: one
    NumPy sweep instead of k Python calls.
    """
    du = d[:, u]
    dv = d[:, v]
    gap = np.abs(du - dv)
    cases = np.full(d.shape[0], int(Case.DISTANT_LEVEL), dtype=np.int8)
    cases[gap == 0] = int(Case.SAME_LEVEL)
    cases[gap == 1] = int(Case.ADJACENT_LEVEL)
    # Scalar order: (u, v) when du < dv, (v, u) when du > dv, and
    # (u, v) for the arbitrary Case-1 tie — i.e. u is high iff du <= dv.
    u_is_high = du <= dv
    u_high = np.where(u_is_high, u, v).astype(np.int64)
    u_low = np.where(u_is_high, v, u).astype(np.int64)
    return cases, u_high, u_low


def classify_deletions_batch(
    d: np.ndarray, sigma: np.ndarray, graph, u: int, v: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify deleting the existing edge ``{u, v}`` for all k sources.

    Vectorized analogue of per-row :func:`classify_deletion` with
    identical results, including the :class:`ValueError` on a gap > 1
    (stale state).  The alternative-predecessor test for gap-1 rows is
    grouped by which endpoint is ``u_low``, so each group is a single
    sub-matrix comparison instead of a per-source neighbor scan.
    """
    k = d.shape[0]
    du = d[:, u]
    dv = d[:, v]
    gap = np.abs(du - dv)
    bad = np.flatnonzero(gap > 1)
    if bad.size:
        g = int(gap[bad[0]])
        raise ValueError(
            f"edge ({u}, {v}) spans {g} levels; an existing undirected "
            "edge can span at most 1 — was the state updated for this graph?"
        )
    cases = np.full(k, int(Case.SAME_LEVEL), dtype=np.int8)
    u_high = np.full(k, u, dtype=np.int64)
    u_low = np.full(k, v, dtype=np.int64)
    adjacent = gap == 1
    if np.any(adjacent):
        u_is_high = du < dv  # gap-1 rows never tie
        u_high[adjacent] = np.where(u_is_high[adjacent], u, v)
        u_low[adjacent] = np.where(u_is_high[adjacent], v, u)
        for low, high in ((v, u), (u, v)):
            rows = np.flatnonzero(adjacent & (u_low == low))
            if not rows.size:
                continue
            others = np.asarray(graph.neighbors(low))
            others = others[others != high].astype(np.int64)
            if others.size:
                has_other = np.any(
                    d[np.ix_(rows, others)] == (d[rows, low] - 1)[:, None],
                    axis=1,
                )
            else:
                has_other = np.zeros(rows.size, dtype=bool)
            cases[rows] = np.where(
                has_other, int(Case.ADJACENT_LEVEL), int(Case.DISTANT_LEVEL)
            )
    return cases, u_high, u_low


def classify_deletion(d_row: np.ndarray, sigma_row: np.ndarray,
                      graph, u: int, v: int) -> Tuple[Case, int, int]:
    """Classify deleting the *existing* edge ``{u, v}``.

    An existing undirected edge spans at most one level, so only two
    gaps occur: 0 (never on a shortest path — no work) and 1 (a DAG
    arc).  A gap-1 deletion preserves distances iff ``u_low`` keeps at
    least one other predecessor; otherwise distances grow, which we map
    to Case 3 (handled by per-source recompute — see
    :mod:`repro.bc.deletion`).
    """
    du, dv = int(d_row[u]), int(d_row[v])
    gap = abs(du - dv)
    if gap == 0:
        return Case.SAME_LEVEL, u, v
    if gap != 1:
        raise ValueError(
            f"edge ({u}, {v}) spans {gap} levels; an existing undirected "
            "edge can span at most 1 — was the state updated for this graph?"
        )
    high, low = (u, v) if du < dv else (v, u)
    # Does u_low have a predecessor besides u_high?
    nbrs = graph.neighbors(low)
    preds = nbrs[d_row[nbrs] == d_row[low] - 1]
    other_pred = bool(np.any(preds != high))
    return (Case.ADJACENT_LEVEL if other_pred else Case.DISTANT_LEVEL), high, low
