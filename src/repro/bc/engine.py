"""Unified dynamic-BC engine.

:class:`DynamicBC` owns a mutable graph plus the per-source state and
applies streaming edge insertions/deletions under one of the
execution strategies ("backends"):

* ``"cpu"``             — Green et al.'s sequential algorithm on the i7 model;
* ``"gpu-edge"``        — edge-parallel kernels on the virtual GPU;
* ``"gpu-node"``        — node-parallel kernels on the virtual GPU;
* ``"gpu-node-atomic"`` — the §III-A atomic-dedup variant (ablation).

Every update returns an :class:`UpdateReport` carrying the per-source
case distribution (Fig. 2), touched counts (Fig. 4), simulated seconds
(Tables II/III) and wall-clock seconds of the vectorized execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bc.accountants import ACCOUNTANTS, CLASSIFY_STEP, make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import (
    Case,
    classify_deletion,
    classify_deletions_batch,
    classify_insertion,
    classify_insertions_batch,
)
from repro.bc.state import BCState
from repro.bc.static_gpu import trace_static_source
from repro.bc.update_core import (
    UpdateStats,
    adjacent_level_update,
    distant_level_update,
)
from repro.gpu.costmodel import (
    DEFAULT_OP_COSTS,
    CostModel,
    OpCosts,
    cpu_access_cycles,
)
from repro.gpu.counters import KernelCounters, Trace
from repro.gpu.device import CORE_I7_2600K, TESLA_C2075, DeviceSpec
from repro.gpu.executor import schedule_blocks
from repro.graph.csr import CSRGraph, DIST_INF
from repro.graph.dynamic import DynamicGraph
from repro.parallel.chunks import plan_chunks_guided
from repro.parallel.pool import ParallelExecutionError, WorkerPool
from repro.parallel.reducer import merge_indexed, rebuild_trace
from repro.parallel.shm import ShmArena, shm_available
from repro.parallel.supervisor import (
    HealthEvent,
    SupervisedPool,
    SupervisorPolicy,
)
from repro.parallel.threadpool import ThreadWorkerPool, free_threading_active
from repro.resilience.errors import UpdateError
from repro.resilience.transactions import UpdateTransaction
from repro.sanitize import tracer as _san
from repro.sanitize.report import SanitizerReport
from repro.utils.prng import SeedLike, default_rng, sample_without_replacement
from repro.utils.timing import WallTimer

#: valid backend names
BACKENDS = tuple(sorted(ACCOUNTANTS))

#: kernels launched per update on the GPU (init, SP, dep, commit)
_LAUNCHES_PER_UPDATE = 4


@dataclass
class UpdateReport:
    """Everything observable about one streaming update."""

    edge: tuple
    operation: str  # "insert" | "delete"
    cases: np.ndarray  # int8[k], per-source scenario
    per_source_seconds: np.ndarray  # float64[k], simulated
    simulated_seconds: float  # scheduled makespan of the whole update
    wall_seconds: float
    touched: np.ndarray  # int64[k], |{v : t[v] != untouched}| per source
    counters: KernelCounters
    stats: List[Optional[UpdateStats]] = field(default_factory=list)
    #: simulated seconds per kernel stage, summed over all sources
    #: (keys: classify, init, sp, dep, pull, prepass, dedup, commit)
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def case_histogram(self) -> Dict[int, int]:
        values, counts = np.unique(self.cases, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


@dataclass
class BatchResult:
    """Outcome of a batch mutation (:meth:`DynamicBC.insert_edges` /
    :meth:`DynamicBC.delete_edges`): one report per applied edge plus
    the pairs that were skipped (already present / absent / self loop)
    instead of silently dropping them.

    Iterating or ``len()``-ing the result walks the applied reports, so
    stream-replay style callers keep working unchanged.
    """

    reports: List[UpdateReport] = field(default_factory=list)
    skipped: List[Tuple[int, int]] = field(default_factory=list)

    def __iter__(self) -> Iterator[UpdateReport]:
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)


class DynamicBC:
    """Streaming betweenness centrality with stored per-source state."""

    def __init__(
        self,
        graph: Union[DynamicGraph, CSRGraph],
        state: BCState,
        backend: str = "gpu-node",
        device: Optional[DeviceSpec] = None,
        num_blocks: int = 0,
        op_costs: OpCosts = DEFAULT_OP_COSTS,
        vectorized: bool = True,
        transactional: bool = True,
        workers: int = 1,
        start_method: Optional[str] = None,
        supervised: bool = True,
        supervisor_policy: Optional[SupervisorPolicy] = None,
        sanitize: bool = False,
        pool_backend: str = "auto",
        pool=None,
        result_transport: str = "slab",
    ) -> None:
        if backend not in ACCOUNTANTS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if pool_backend not in ("auto", "processes", "threads"):
            raise ValueError(
                f"pool_backend must be 'auto', 'processes' or 'threads', "
                f"got {pool_backend!r}"
            )
        self.graph = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph.from_csr(graph)
        )
        if state.num_vertices != self.graph.num_vertices:
            raise ValueError(
                f"state has {state.num_vertices} vertices, graph has "
                f"{self.graph.num_vertices}"
            )
        self.state = state
        self.backend = backend
        if device is None:
            device = CORE_I7_2600K if backend == "cpu" else TESLA_C2075
        self.device = device
        self.cost_model = CostModel(device, num_blocks)
        self.num_blocks = self.cost_model.num_blocks
        self.op_costs = op_costs
        #: escape hatch for the differential tests: ``False`` runs the
        #: original per-source classification loop instead of the
        #: vectorized multi-source fast path (identical reports either
        #: way — see tests/test_engine_vectorized.py).
        self.vectorized = bool(vectorized)
        #: ``True`` makes every update atomic: a mid-update exception
        #: rolls graph, state rows, BC scores and counters back to
        #: their pre-update values and surfaces a structured
        #: :class:`~repro.resilience.errors.UpdateError`.
        self.transactional = bool(transactional)
        self._txn: Optional[UpdateTransaction] = None
        self.counters = KernelCounters()
        #: coarse-grained source parallelism: worker processes sharing
        #: the CSR arrays and state rows via shared memory — the CPU
        #: analogue of the paper's one-source-per-SM decomposition
        #: (docs/MODEL.md, "Parallel execution").  ``1`` runs serially;
        #: every reported artifact is bit-identical either way.
        self.workers = max(1, int(workers))
        self._start_method = start_method
        #: execution backend of the worker pool (not to be confused
        #: with the accountant ``backend`` above): ``"processes"`` runs
        #: fork+shm workers, ``"threads"`` runs the same round protocol
        #: on threads over direct array views (parallel on
        #: free-threaded CPython), ``"auto"`` resolves at pool creation
        #: (REPRO_POOL_BACKEND override, then free-threading, then shm)
        self.pool_backend = pool_backend
        #: result transport of the pool (``"slab"`` = shared-memory
        #: result slabs, ``"queue"`` = framed bytes through the queue —
        #: the benchmarks' measurable baseline)
        self.result_transport = result_transport
        #: externally owned warm pool: adopted, never closed by this
        #: engine, so one pool can serve successive replay() calls and
        #: engine instances without respawning workers
        self._external_pool = pool
        if pool is not None:
            self.workers = max(2, int(pool.workers))
        #: ``True`` wraps the worker pool in a
        #: :class:`~repro.parallel.supervisor.SupervisedPool`:
        #: heartbeat monitoring, hung-worker SIGKILL, bounded respawn
        #: and the degradation ladder replace the legacy "one crash
        #: demotes to serial permanently" policy.  ``False`` keeps the
        #: legacy fail-fast pool (the differential tests pin it).
        self.supervised = bool(supervised)
        self.supervisor_policy = supervisor_policy
        #: ``True`` runs every kernel under the race sanitizer
        #: (:mod:`repro.sanitize.tracer`): the engine executes serially
        #: (the pool is bypassed — the parallel contract guarantees
        #: bit-identical results, so only wall-clock differs) and every
        #: reported artifact stays bit-identical to an uninstrumented
        #: run; hazards accumulate in :meth:`sanitizer_report`.
        self.sanitize = bool(sanitize)
        self._tracer: Optional[_san.MemoryTracer] = (
            _san.MemoryTracer() if self.sanitize else None
        )
        self._pool: Optional[WorkerPool] = None
        self._arena: Optional[ShmArena] = None
        self._parallel_disabled = False
        #: identity signature of the state arrays adopted into shm
        self._adopted: Optional[tuple] = None
        self._graph_capacity = 0
        #: EWMA of each source's observed simulated seconds, feeding
        #: the guided chunk planner (deterministic — simulated costs
        #: are replayable — so chunk plans are too)
        self._source_cost: Optional[np.ndarray] = None
        #: parent-side seconds spent folding worker results (the
        #: reduction half of the dispatch+reduction overhead metric)
        self._fold_seconds = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: Union[DynamicGraph, CSRGraph],
        num_sources: Optional[int] = None,
        sources: Optional[Sequence[int]] = None,
        backend: str = "gpu-node",
        device: Optional[DeviceSpec] = None,
        num_blocks: int = 0,
        seed: SeedLike = None,
        op_costs: OpCosts = DEFAULT_OP_COSTS,
        vectorized: bool = True,
        transactional: bool = True,
        workers: int = 1,
        start_method: Optional[str] = None,
        supervised: bool = True,
        supervisor_policy: Optional[SupervisorPolicy] = None,
        sanitize: bool = False,
        pool_backend: str = "auto",
        pool=None,
        result_transport: str = "slab",
    ) -> "DynamicBC":
        """Build the engine, computing the initial state with Brandes.

        Give either ``sources`` explicitly or ``num_sources`` random
        ones (``None`` means exact BC over all vertices).

        ``workers > 1`` runs the k initial Brandes passes — and every
        subsequent update/recompute/check — on a shared-memory worker
        pool; the resulting state is bit-identical to the serial build
        (the bc fold happens in the parent, in source order).

        ``sanitize=True`` builds the engine in race-sanitizer mode:
        every update/recompute kernel from here on is traced
        (:meth:`sanitizer_report`); execution is serial (bypassing any
        worker pool) but bit-identical.  The initial Brandes build
        itself is not traced — use ``brandes_bc(..., sanitize=True)``
        to check the static kernels.
        """
        snap = graph.snapshot() if isinstance(graph, DynamicGraph) else graph
        if sources is not None:
            chosen = [int(s) for s in sources]
        elif num_sources is not None:
            # Same sampling calls as BCState.compute_with_random_sources
            # so workers=N picks the identical source set.
            rng = default_rng(seed)
            chosen = sample_without_replacement(
                rng, snap.num_vertices, min(num_sources, snap.num_vertices)
            )
        else:
            chosen = range(snap.num_vertices)
        if (workers > 1 or pool is not None) and not sanitize:
            engine = cls._from_graph_parallel(
                graph, snap, chosen, backend, device, num_blocks, op_costs,
                vectorized, transactional, workers, start_method,
                supervised, supervisor_policy, pool_backend, pool,
                result_transport,
            )
            if engine is not None:
                return engine
        state = BCState.compute(snap, chosen)
        return cls(graph, state, backend, device, num_blocks, op_costs,
                   vectorized, transactional, workers=workers,
                   start_method=start_method, supervised=supervised,
                   supervisor_policy=supervisor_policy, sanitize=sanitize,
                   pool_backend=pool_backend, pool=pool,
                   result_transport=result_transport)

    @classmethod
    def _from_graph_parallel(
        cls, graph, snap, chosen, backend, device, num_blocks, op_costs,
        vectorized, transactional, workers, start_method,
        supervised, supervisor_policy, pool_backend="auto", pool=None,
        result_transport="slab",
    ) -> Optional["DynamicBC"]:
        """Initial Brandes build through the worker pool; ``None`` when
        the pool is unavailable or failed (caller falls back to the
        serial build, which also re-raises any real input error)."""
        src = np.asarray(sorted(int(s) for s in chosen), dtype=np.int64)
        k, n = int(src.size), snap.num_vertices
        if np.unique(src).size != k:
            return None  # let BCState.compute raise its usual error
        if k and (src[0] < 0 or src[-1] >= n):
            return None  # ditto (IndexError from single_source_state)
        state = BCState(
            src,
            np.full((k, n), DIST_INF, dtype=np.int64),
            np.zeros((k, n), dtype=np.float64),
            np.zeros((k, n), dtype=np.float64),
            np.zeros(n, dtype=np.float64),
        )
        engine = cls(graph, state, backend, device, num_blocks, op_costs,
                     vectorized, transactional, workers=workers,
                     start_method=start_method, supervised=supervised,
                     supervisor_policy=supervisor_policy,
                     pool_backend=pool_backend, pool=pool,
                     result_transport=result_transport)
        if engine._ensure_pool() is None:
            return None  # zeros state discarded; caller builds serially
        try:
            engine._brandes_fill(snap, range(k))
        except ParallelExecutionError as exc:
            engine._disable_parallel(f"initial build failed: {exc}")
            return None
        return engine

    # ------------------------------------------------------------------
    @property
    def bc_scores(self) -> np.ndarray:
        """Current (approximate) BC scores — live view, do not mutate."""
        return self.state.bc

    @property
    def sources(self) -> np.ndarray:
        return self.state.sources

    def bc_snapshot(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Export a detached copy of the current BC scores.

        Unlike :attr:`bc_scores` (a live view that mutates under the
        caller as updates land), the returned array is the caller's to
        keep — the service layer's snapshot-publication hook.  Pass
        *out* (a ``float64[n]`` buffer) to copy in place and avoid a
        transient allocation; it is returned for convenience.
        """
        bc = self.state.bc
        if out is None:
            return bc.copy()
        if out.shape != bc.shape or out.dtype != bc.dtype:
            raise ValueError(
                f"out must be {bc.dtype}{list(bc.shape)}, got "
                f"{out.dtype}{list(out.shape)}"
            )
        np.copyto(out, bc)
        return out

    def top_k(self, k: int = 10) -> List:
        """The k most central vertices right now, as ``(vertex, score)``
        pairs in descending order — §II-A: "Typically the vertices with
        the highest BC scores are of particular interest"."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, self.state.num_vertices)
        order = np.argsort(self.state.bc)[::-1][:k]
        return [(int(v), float(self.state.bc[v])) for v in order]

    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> UpdateReport:
        """Insert edge {u, v} and update the analytic.

        Raises :class:`ValueError` if the edge already exists or is a
        self loop (the suite graphs are simple).
        """
        if not self.graph.insert_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already present or self loop")
        return self._apply(u, v, operation="insert")

    def delete_edge(self, u: int, v: int) -> UpdateReport:
        """Delete edge {u, v} and update the analytic (extension; see
        :mod:`repro.bc.deletion` for the algorithmic background)."""
        if not self.graph.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) not present")
        # Classification needs the pre-deletion adjacency (to find
        # alternative predecessors of u_low).
        pre_snap = self.graph.snapshot()
        if self.vectorized:
            classifications = classify_deletions_batch(
                self.state.d, self.state.sigma, pre_snap, u, v
            )
        else:
            classifications = [
                classify_deletion(self.state.d[i], self.state.sigma[i],
                                  pre_snap, u, v)
                for i in range(self.state.num_sources)
            ]
        self.graph.delete_edge(u, v)
        return self._apply(u, v, operation="delete", classifications=classifications)

    def add_vertex(self) -> int:
        """Append an isolated vertex and extend the stored state.

        Per §II-D: "a node insertion causes no change to existing BC
        scores.  A newly inserted node belongs to its own connected
        component ... and thus has a BC score of 0."  The new column is
        therefore (d=inf, sigma=0, delta=0, bc=0); subsequent
        `insert_edge` calls attach it through the normal Case-3
        component-merge machinery.
        """
        v = self.graph.add_vertex()
        st = self.state
        k = st.num_sources
        st.d = np.column_stack([st.d, np.full(k, DIST_INF, dtype=np.int64)])
        st.sigma = np.column_stack([st.sigma, np.zeros(k)])
        st.delta = np.column_stack([st.delta, np.zeros(k)])
        st.bc = np.append(st.bc, 0.0)
        return v

    def insert_edges(self, edges: Sequence) -> BatchResult:
        """Insert a batch of edges one at a time (the streaming model:
        updates are serialized so each report reflects a consistent
        analytic).  Self loops and edges already present are not
        applied; they are returned in :attr:`BatchResult.skipped`."""
        result = BatchResult()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v or self.graph.has_edge(u, v):
                result.skipped.append((u, v))
                continue
            result.reports.append(self.insert_edge(u, v))
        return result

    def delete_edges(self, edges: Sequence) -> BatchResult:
        """Delete a batch of edges one at a time; absent edges (and
        self loops) land in :attr:`BatchResult.skipped`."""
        result = BatchResult()
        for u, v in edges:
            u, v = int(u), int(v)
            if not self.graph.has_edge(u, v):
                result.skipped.append((u, v))
                continue
            result.reports.append(self.delete_edge(u, v))
        return result

    def recompute(self) -> None:
        """Throw the state away and rebuild it with Brandes (the static
        recomputation the dynamic algorithm is measured against).

        With ``workers > 1`` the k passes fan out to the pool, writing
        the shared rows in place; the parent re-folds bc in source
        order, so the result is bit-identical to the serial rebuild.
        """
        snap = self.graph.snapshot()
        if self._ensure_pool() is not None:
            try:
                self._brandes_fill(snap, range(self.state.num_sources))
                return
            except ParallelExecutionError as exc:
                self._parallel_failed("recompute failed", exc)
        if self._tracer is not None:
            with _san.tracing(self._tracer):
                self.state = BCState.compute(snap, self.state.sources)
            return
        self.state = BCState.compute(snap, self.state.sources)

    def verify(self, atol: float = 1e-6) -> None:
        """Assert the incrementally-maintained state matches scratch."""
        self.state.verify_against(self.graph.snapshot(), atol=atol)

    def spot_check(self, num_sources: int = 4, seed: SeedLike = None,
                   atol: float = 1e-6) -> None:
        """Cheap integrity check: recompute a random sample of source
        rows from scratch and compare (full :meth:`verify` is O(k m)).

        Catches state corruption without paying the full verification
        cost on every step of a long stream.  BC scores are sums over
        *all* sources, so they are only checked by :meth:`verify`.
        """
        from repro.utils.prng import default_rng

        from repro.resilience.guards import check_rows_against_scratch

        rng = default_rng(seed)
        k = self.state.num_sources
        picks = rng.choice(k, size=min(num_sources, k), replace=False)
        bad = check_rows_against_scratch(self, picks, atol=atol)
        if bad:
            i, component = bad[0]
            raise AssertionError(
                f"{component} row corrupt for source {int(self.state.sources[i])}"
            )

    def check_rows(self, indices: Sequence[int], atol: float = 1e-6) -> List[int]:
        """Return the subset of source-row *indices* whose stored
        ``d``/``sigma``/``delta`` rows differ from a from-scratch
        single-source recomputation (the guard's detection primitive;
        :meth:`spot_check` is the raising wrapper).

        With ``workers > 1`` the scratch recomputations fan out to the
        pool; chunks stay in input order, so the returned list matches
        the serial scan exactly.
        """
        indices = [int(i) for i in indices]
        if len(indices) > 1 and self._ensure_pool() is not None:
            try:
                return self._check_rows_parallel(indices, atol)
            except ParallelExecutionError as exc:
                self._parallel_failed("check_rows failed", exc)
        from repro.resilience.guards import check_rows_against_scratch

        return [i for i, _ in check_rows_against_scratch(self, indices, atol=atol)]

    def repair_source(self, i: int) -> UpdateStats:
        """Rebuild source row *i* from scratch and restore the
        ``bc = Σ delta`` invariant.

        This is the targeted recovery path for a *corrupted* row: the
        stored row cannot be trusted, so its BC contribution is not
        subtracted incrementally (that would bake the corruption into
        the scores); instead the row is replaced by a fresh Brandes
        pass and ``bc`` is re-folded from all stored rows.  Charged to
        the counters as one static source under the ``"repair"``
        kernel tag.  Returns the pass's :class:`UpdateStats`.
        """
        k = self.state.num_sources
        if not 0 <= i < k:
            raise IndexError(f"source index {i} out of range for k={k}")
        i = int(i)
        snap = self.graph.snapshot()
        if self._ensure_pool() is not None:
            try:
                return self._repair_parallel(snap, i)
            except ParallelExecutionError as exc:
                self._parallel_failed("repair failed", exc)
        access = cpu_access_cycles(self.device, snap.num_vertices,
                                   2 * snap.num_edges)
        acc = make_accountant(
            self.backend, snap.num_vertices, 2 * snap.num_edges,
            self.op_costs, label=f"repair:{int(self.state.sources[i])}",
            access_cycles=access if self.backend == "cpu" else None,
        )
        if self._tracer is not None:
            with _san.tracing(self._tracer):
                stats = self._rebuild_row(snap, i, acc)
        else:
            stats = self._rebuild_row(snap, i, acc)
        self.state.rebuild_bc()
        counters = KernelCounters()
        counters.absorb(acc.finish(), kernel="repair")
        self.counters = self.counters.merged(counters)
        return stats

    def sanitizer_report(self) -> SanitizerReport:
        """Everything the race sanitizer has observed on this engine so
        far (cumulative across updates/recomputes/repairs).

        Raises :class:`RuntimeError` unless the engine was built with
        ``sanitize=True``.
        """
        if self._tracer is None:
            raise RuntimeError(
                "engine not in sanitize mode; construct with "
                "DynamicBC(..., sanitize=True)"
            )
        return self._tracer.report()

    def memory_report(self) -> Dict[str, int]:
        """Bytes held by the O(kn) supplemental state (§II-D: "This
        added storage increases the space complexity to ... O(kn) for
        approximate BC computation ... the performance gain is well
        worth the extra space").  Keys: per stored array plus 'total'.
        """
        st = self.state
        report = {
            "d": st.d.nbytes,
            "sigma": st.sigma.nbytes,
            "delta": st.delta.nbytes,
            "bc": st.bc.nbytes,
            "graph_csr": (
                self.graph.snapshot().row_offsets.nbytes
                + self.graph.snapshot().col_indices.nbytes
            ),
        }
        report["total"] = sum(report.values())
        return report

    # ------------------------------------------------------------------
    # Parallel execution layer (docs/MODEL.md, "Parallel execution")
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and migrate the state back into
        private memory; the engine keeps working serially afterwards.

        Idempotent, and a no-op for serial engines.  ``with`` works
        too: ``with DynamicBC.from_graph(g, workers=4) as engine: ...``
        """
        self._release_parallel()
        self._parallel_disabled = True

    def __enter__(self) -> "DynamicBC":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            if self._pool is not None or self._arena is not None:
                self._release_parallel()
        except Exception:
            pass  # interpreter teardown: daemons + tracker clean up

    def _resolve_pool_backend(self) -> str:
        """Resolve ``pool_backend`` to ``processes``/``threads`` at
        pool-creation time: an explicit choice wins, then the
        ``REPRO_POOL_BACKEND`` environment override, then threads when
        free-threading is active, else processes.  (Unlike the
        library-level :func:`~repro.parallel.threadpool.
        resolve_pool_backend`, ``auto`` without shm raises here so the
        engine keeps its documented warn-and-run-serial fallback.)"""
        import os

        if self.pool_backend != "auto":
            return self.pool_backend
        env = os.environ.get("REPRO_POOL_BACKEND", "").strip().lower()
        if env in ("processes", "threads"):
            return env
        if free_threading_active():
            return "threads"
        return "processes"

    def _ensure_pool(self) -> Optional[WorkerPool]:
        """The live worker pool, or ``None`` when running serially
        (``workers <= 1``, :meth:`close` called, sanitize mode — the
        tracer is single-threaded by design and the parallel contract
        makes serial execution bit-identical — or the platform cannot
        support the pool, which warns once and falls back)."""
        if self.workers <= 1 or self._parallel_disabled or self.sanitize:
            return None
        if self._pool is not None:
            return self._pool
        try:
            if self._external_pool is not None:
                self._pool = self._external_pool
                pool_backend = self._pool.backend
            else:
                pool_backend = self._resolve_pool_backend()
            if pool_backend == "processes" and not shm_available():
                raise RuntimeError("POSIX shared memory unavailable")
            if self._pool is None:
                if self.supervised:
                    self._pool = SupervisedPool(
                        self.workers, self._start_method,
                        policy=self.supervisor_policy,
                        backend=pool_backend,
                        result_transport=self.result_transport,
                    )
                elif pool_backend == "threads":
                    self._pool = ThreadWorkerPool(
                        self.workers, self._start_method,
                        result_transport=self.result_transport,
                    )
                else:
                    self._pool = WorkerPool(
                        self.workers, self._start_method,
                        result_transport=self.result_transport,
                    )
            # Thread workers operate on the engine's arrays directly;
            # only process workers need the shared-memory mirror.
            self._arena = ShmArena() if pool_backend == "processes" else None
            self._adopted = None
            self._graph_capacity = 0
        except Exception as exc:
            self._disable_parallel(str(exc))
        return self._pool

    def _disable_parallel(self, reason: str) -> None:
        """Fall back to serial execution permanently (results are
        identical — only wall-clock changes — so a warning suffices)."""
        import warnings

        warnings.warn(
            f"DynamicBC parallel mode disabled, falling back to serial "
            f"execution: {reason}",
            RuntimeWarning, stacklevel=3,
        )
        self._parallel_disabled = True
        self._release_parallel()

    def _parallel_failed(self, what: str, exc: Exception) -> None:
        """Route a pool failure: the legacy pool demotes to serial
        permanently; a supervised pool already retried/degraded, so
        the engine keeps it (its ladder decides future routing)."""
        if not self.supervised:
            self._disable_parallel(f"{what}: {exc}")

    def _pool_run(self, kind: str, common: dict, payloads: List[dict],
                  reset=None) -> List:
        """Dispatch one round through the engine's pool, wiring the
        supervisor's recovery callbacks when supervision is on.

        ``reset`` restores a chunk's state rows before a retry; only
        the ``update`` kind mutates rows incrementally, so everything
        else is idempotent and retry-safe with ``reset=None``.  An
        update dispatched *without* a transaction journal has no safe
        reset, so it keeps the legacy fail-fast contract.
        """
        pool = self._pool
        if isinstance(pool, SupervisedPool):
            retryable = kind != "update" or reset is not None
            return pool.run(kind, common, payloads, reset=reset,
                            serial=self._serial_chunk, retryable=retryable)
        return pool.run(kind, common, payloads)

    def _serial_chunk(self, kind: str, common: dict, payload: dict):
        """Execute one worker chunk in the parent process (quarantine
        retry / the ladder's serial rung): the exact worker handler
        runs against the arena's parent-side views — the same bytes
        the workers map — so results are bit-identical to pool
        execution."""
        from types import SimpleNamespace

        from repro.parallel import worker as _worker_mod

        if self._arena is not None:
            attachment = SimpleNamespace(arrays=self._arena.views(),
                                         generation=self._arena.generation)
        else:
            # Thread backend: the round's views *are* the engine's
            # arrays, so the parent-side retry needs no attachment.
            attachment = SimpleNamespace(arrays=common.get("views") or {},
                                         generation=0)
        return _worker_mod.run_task(attachment, kind, common, payload)

    def _reset_update_chunk(self, payload: dict) -> None:
        """Restore every state row an ``update`` chunk may have half
        written (supervisor retry callback; rows were journaled before
        dispatch, and ``bc``/counters are parent-side only, touched
        after a fully successful round)."""
        txn = self._txn
        if txn is None:
            return
        for item in payload["items"]:
            txn.restore_row(int(item[0]))

    def health_report(self) -> Dict:
        """Operator-facing supervision snapshot: execution mode plus —
        under a supervised pool — the ladder level, live worker count
        and every supervision counter (kills, respawns, quarantines,
        demotions, promotions...)."""
        report: Dict = {
            "workers": self.workers,
            "supervised": self.supervised,
            "parallel_disabled": self._parallel_disabled,
            "pool_backend": (
                self._pool.backend if self._pool is not None
                else self.pool_backend
            ),
        }
        pool = self._pool
        if isinstance(pool, SupervisedPool):
            report.update(pool.health_report())
        else:
            report["level"] = (
                "serial"
                if self.workers <= 1 or self._parallel_disabled
                or pool is None
                else "full-pool"
            )
        return report

    def transport_report(self) -> Dict:
        """Result-path economics of the live pool: rounds/chunks
        dispatched, bytes through the queue vs read from the slabs,
        spills, and the parent's dispatch/decode/fold seconds — the
        direct dispatch+reduction overhead measurement the benchmarks
        record (no more negative overhead-by-subtraction).  Empty when
        running serially."""
        pool = self._pool
        if pool is None:
            return {}
        report = pool.transport_stats()
        report["fold_seconds"] = self._fold_seconds
        report["overhead_seconds"] = (
            report.get("dispatch_seconds", 0.0)
            + report.get("decode_seconds", 0.0)
            + self._fold_seconds
        )
        return report

    def drain_health_events(self) -> List[HealthEvent]:
        """Supervision events since the last drain (empty for serial /
        legacy-pool engines); :func:`repro.graph.stream.replay` folds
        them into the guard-event log."""
        pool = self._pool
        if isinstance(pool, SupervisedPool):
            return pool.drain_events()
        return []

    def _release_parallel(self) -> None:
        if self._pool is not None:
            # An adopted warm pool belongs to its creator: detach
            # without closing so other engines keep using it.
            if self._pool is not self._external_pool:
                self._pool.close()
            self._pool = None
        if self._arena is not None:
            state = getattr(self, "state", None)
            if state is not None:
                for name in ("sources", "d", "sigma", "delta"):
                    arr = getattr(state, name, None)
                    if arr is not None and self._arena.owns(name, arr):
                        setattr(state, name, arr.copy())
            self._arena.close()
            self._arena = None
        self._adopted = None
        self._graph_capacity = 0

    def _shared_spec(self, snap: CSRGraph) -> dict:
        """Mirror the engine state + CSR into the shm arena and return
        the worker attach spec.

        State adoption is one-shot: the ``BCState`` arrays are
        *replaced* by shared-memory views, so worker writes and parent
        reads are the same bytes and steady-state dispatch copies only
        the CSR arrays (the graph changes every update).  Anything that
        swaps the state arrays (``add_vertex``, checkpoint restore, a
        serial ``recompute``) changes their identity and triggers
        re-adoption here.
        """
        arena = self._arena
        state = self.state
        k, n = state.num_sources, state.num_vertices
        signature = (
            id(state), id(state.sources), id(state.d), id(state.sigma),
            id(state.delta), k, n,
        )
        if signature != self._adopted:
            for name in ("sources", "d", "sigma", "delta"):
                current = getattr(state, name)
                if arena.owns(name, current):
                    # Re-adoption can find some arrays still living in
                    # the previous-generation block (e.g. add_vertex
                    # replaces d/sigma/delta but keeps sources); copy
                    # them out before allocate() unlinks that block.
                    current = current.copy()
                shared = arena.allocate(name, current.shape, current.dtype)
                shared[...] = current
                setattr(state, name, shared)
            arena.allocate("row_offsets", (n + 1,), np.int64)
            self._graph_capacity = 0
            self._adopted = (
                id(state), id(state.sources), id(state.d), id(state.sigma),
                id(state.delta), k, n,
            )
        arcs = int(snap.col_indices.size)
        if arcs > self._graph_capacity:
            # 25% headroom so steady insertion streams reallocate
            # (and force worker re-attachment) only O(log m) times.
            capacity = max(64, arcs + arcs // 4)
            arena.allocate("col_indices", (capacity,), np.int32)
            self._graph_capacity = capacity
        arena.get("row_offsets")[: n + 1] = snap.row_offsets
        arena.get("col_indices")[:arcs] = snap.col_indices
        return arena.spec()

    def _static_strategy(self) -> str:
        """Nearest static cost profile for this backend (variants like
        gpu-node-atomic share the node-parallel static profile)."""
        from repro.bc.static_gpu import STATIC_STRATEGIES

        if self.backend in STATIC_STRATEGIES:
            return self.backend
        return "cpu" if self.backend == "cpu" else "gpu-node"

    def _parallel_common(self, snap: CSRGraph, **extra) -> dict:
        """Build one round's shared task context for the active pool
        backend.

        Process workers get the shm attach ``spec`` (the CSR + state
        mirror from :meth:`_shared_spec`); thread workers get
        ``views`` — direct references to the engine's own arrays, no
        copy, no shm, same handler code (:func:`repro.parallel.worker.
        _views` slices both identically).
        """
        common = {
            "n": int(snap.num_vertices),
            "arcs": int(2 * snap.num_edges),
            "backend": self.backend,
            "op_costs": self.op_costs,
            "access": cpu_access_cycles(
                self.device, snap.num_vertices, 2 * snap.num_edges
            ),
            "static_strategy": self._static_strategy(),
        }
        if self._arena is not None:
            common["spec"] = self._shared_spec(snap)
        else:
            state = self.state
            common["views"] = {
                "row_offsets": snap.row_offsets,
                "col_indices": snap.col_indices,
                "sources": state.sources,
                "d": state.d,
                "sigma": state.sigma,
                "delta": state.delta,
            }
        common.update(extra)
        return common

    def _plan(self, items: List) -> List[List]:
        """Guided self-scheduling chunk plan for one round, weighted by
        the observed per-source cost EWMA when the items carry source
        indices (update rounds); deterministic because the weights are
        simulated seconds, not wall-clock."""
        weights = None
        cost = self._source_cost
        if cost is not None and items and isinstance(items[0], tuple):
            idx = [int(item[0]) for item in items]
            if max(idx) < cost.size and float(cost[idx].sum()) > 0.0:
                weights = cost[idx]
        return plan_chunks_guided(items, self._pool.workers, weights=weights)

    def _brandes_fill(self, snap: CSRGraph, indices) -> None:
        """Rebuild the given state rows from scratch in the workers and
        re-fold bc in source order (bit-identical to
        :meth:`BCState.compute`)."""
        common = self._parallel_common(snap)
        items = [int(i) for i in indices]
        payloads = [
            {"items": chunk}
            for chunk in plan_chunks_guided(items, self._pool.workers)
        ]
        self._pool_run("brandes", common, payloads)
        self.state.rebuild_bc()

    def _check_rows_parallel(self, indices: List[int], atol: float) -> List[int]:
        snap = self.graph.snapshot()
        common = self._parallel_common(snap, atol=float(atol))
        payloads = [
            {"items": chunk}
            for chunk in plan_chunks_guided(indices, self._pool.workers)
        ]
        outputs = self._pool_run("check", common, payloads)
        return [int(record[0]) for output in outputs for record in output]

    def _repair_parallel(self, snap: CSRGraph, i: int) -> UpdateStats:
        common = self._parallel_common(snap)
        outputs = self._pool_run("rebuild", common, [{"items": [i]}])
        _, steps, touched, num_levels = outputs[0][0]
        trace = rebuild_trace(f"repair:{int(self.state.sources[i])}", steps)
        self.state.rebuild_bc()
        counters = KernelCounters()
        counters.absorb(trace, kernel="repair")
        self.counters = self.counters.merged(counters)
        return UpdateStats(touched=int(touched), moved=0,
                           sp_levels=int(num_levels),
                           dep_levels=int(num_levels) - 1)

    def _dispatch_update(
        self, snap: CSRGraph, operation: str, cases, highs, lows,
        active: List[int],
    ) -> Dict[int, tuple]:
        """Fan the active sources out to the pool; returns
        ``{i: (steps, stats, bc_idx, bc_vals)}``.

        Chunks follow the guided self-scheduling taper, weighted by
        each source's cost EWMA from previous rounds — big chunks
        first, fine tail — while staying contiguous and ordered, so
        the parent's ascending-source fold (and bit-identity) is
        untouched.
        """
        common = self._parallel_common(snap, operation=operation)
        items = [
            (i, int(cases[i]), int(highs[i]), int(lows[i])) for i in active
        ]
        payloads = [{"items": chunk} for chunk in self._plan(items)]
        reset = self._reset_update_chunk if self._txn is not None else None
        outputs = self._pool_run("update", common, payloads, reset=reset)
        return merge_indexed(outputs, active)

    def _apply_parallel(
        self,
        u: int,
        v: int,
        operation: str,
        classifications=None,
    ) -> UpdateReport:
        """Coarse-grained source-parallel update: Case-1 bulk charge as
        in :meth:`_apply_vectorized`, then the active minority fanned
        out to the worker pool — one source per worker at a time, the
        paper's one-source-per-SM decomposition on CPU cores.

        Workers mutate their disjoint state rows in place and return
        order-insensitive artifacts (step lists, stats, sparse bc
        adjustments); every order-sensitive float accumulation — bc
        scatter-adds, stage folds, counter absorption — is replayed
        here in ascending source order, so reports, counters and bc
        are bit-identical to the serial paths regardless of worker
        scheduling.
        """
        snap = self.graph.snapshot()
        state = self.state
        k = state.num_sources
        per_source = np.zeros(k, dtype=np.float64)
        touched = np.zeros(k, dtype=np.int64)
        stats_list: List[Optional[UpdateStats]] = [None] * k
        stage_seconds: Dict[str, float] = {}
        counters = KernelCounters()
        timer = WallTimer()
        with timer:
            if classifications is None:
                cases, highs, lows = classify_insertions_batch(state.d, u, v)
            elif isinstance(classifications, tuple):
                cases, highs, lows = classifications
            else:  # per-source tuples from the vectorized=False paths
                cases = np.array(
                    [int(c) for c, _, _ in classifications], dtype=np.int8
                )
                highs = np.array(
                    [int(h) for _, h, _ in classifications], dtype=np.int64
                )
                lows = np.array(
                    [int(lo) for _, _, lo in classifications], dtype=np.int64
                )
            same_mask = np.asarray(cases) == int(Case.SAME_LEVEL)
            num_same = int(np.count_nonzero(same_mask))
            classify_sec = self.cost_model.step_seconds(CLASSIFY_STEP)
            per_source[same_mask] = classify_sec
            if k:
                stage_seconds["classify"] = self.cost_model.fold_step_seconds(
                    CLASSIFY_STEP, k
                )
            counters.absorb_step_repeated(
                CLASSIFY_STEP, num_same,
                kernel=f"{operation}-case{int(Case.SAME_LEVEL)}",
            )
            active = [int(i) for i in np.flatnonzero(~same_mask)]
            if active:
                if self._txn is not None:
                    # Journal every row the workers may touch *before*
                    # dispatch: a crashed worker leaves rows half
                    # written, and the rollback must cover all of them.
                    for i in active:
                        self._txn.save_row(i)
                    self._txn.current_source = -1
                results = self._dispatch_update(
                    snap, operation, cases, highs, lows, active
                )
                fold_timer = WallTimer().start()
                for i in active:
                    steps, stats, bc_idx, bc_vals = results[i]
                    case = int(cases[i])
                    trace = rebuild_trace(
                        f"{operation}:{int(state.sources[i])}", steps
                    )
                    per_source[i] = self.cost_model.trace_seconds(trace)
                    for stage, sec in self.cost_model.stage_breakdown(
                        trace
                    ).items():
                        if stage == "classify":
                            continue  # folded into the bulk total
                        stage_seconds[stage] = (
                            stage_seconds.get(stage, 0.0) + sec
                        )
                    counters.absorb(trace, kernel=f"{operation}-case{case}")
                    if bc_idx.size:
                        # Sparse replay of the kernel's masked commit:
                        # zero-valued adjustments are dropped, which is
                        # a bitwise no-op on the bc accumulator.
                        state.bc[bc_idx] += bc_vals
                    touched[i] = stats.touched
                    stats_list[i] = stats
                self._fold_seconds += fold_timer.stop()
                # Feed the guided planner: EWMA of each active source's
                # *simulated* seconds (deterministic, so the next
                # round's chunk plan is too).
                cost = self._source_cost
                if cost is None or cost.size != k:
                    cost = self._source_cost = np.zeros(k, dtype=np.float64)
                act = np.asarray(active, dtype=np.int64)
                observed = per_source[act]
                cost[act] = np.where(
                    cost[act] > 0.0, 0.5 * cost[act] + 0.5 * observed,
                    observed,
                )
        return self._finish_report(
            u, v, operation, np.asarray(cases, dtype=np.int8), per_source,
            touched, stats_list, stage_seconds, counters, timer,
        )

    # ------------------------------------------------------------------
    def _apply(
        self,
        u: int,
        v: int,
        operation: str,
        classifications=None,
    ) -> UpdateReport:
        if not self.transactional:
            return self._apply_inner(u, v, operation, classifications)
        # Transactional path: journal every piece the update mutates
        # (edge, touched state rows, bc, counters) and roll all of it
        # back on any mid-update exception, so a failed update simply
        # never happened (see repro.resilience.transactions).
        txn = UpdateTransaction(self, u, v, operation)
        self._txn = txn
        try:
            return self._apply_inner(u, v, operation, classifications)
        except Exception as exc:
            failed_at = txn.current_source
            txn.rollback()
            raise UpdateError(
                (u, v), operation, exc, source_index=failed_at,
                rolled_back=True,
            ) from exc
        finally:
            self._txn = None

    def _apply_inner(
        self,
        u: int,
        v: int,
        operation: str,
        classifications=None,
    ) -> UpdateReport:
        """Route one update to an execution path: the worker pool when
        live, else the vectorized/looped serial paths — all
        bit-identical, so routing only affects wall-clock."""
        if self._tracer is not None:
            with _san.tracing(self._tracer):
                if self.vectorized:
                    return self._apply_vectorized(u, v, operation,
                                                  classifications)
                return self._apply_looped(u, v, operation, classifications)
        if self._ensure_pool() is not None:
            try:
                return self._apply_parallel(u, v, operation, classifications)
            except ParallelExecutionError as exc:
                # Supervised pools only surface here after the whole
                # recovery ladder failed for this update; the engine
                # keeps the pool and lets the transaction/guard layers
                # take over.  Legacy pools demote to serial for good.
                self._parallel_failed("update failed", exc)
                raise
        if self.vectorized:
            return self._apply_vectorized(u, v, operation, classifications)
        return self._apply_looped(u, v, operation, classifications)

    def _run_source(
        self, snap: CSRGraph, i: int, case: Case, u_high: int, u_low: int,
        operation: str, access: float,
    ):
        """Execute one source's update (any case) and return its
        ``(trace, stats)``.  Shared verbatim by the looped and
        vectorized paths so their per-source work is identical."""
        if self._txn is not None:
            self._txn.save_row(i)
        state = self.state
        s = int(state.sources[i])
        acc = make_accountant(
            self.backend, snap.num_vertices, 2 * snap.num_edges,
            self.op_costs, label=f"{operation}:{s}",
            access_cycles=access if self.backend == "cpu" else None,
        )
        acc.classify()
        if case == Case.SAME_LEVEL:
            stats = None
        elif case == Case.ADJACENT_LEVEL:
            stats = adjacent_level_update(
                snap, s, state.d[i], state.sigma[i], state.delta[i],
                state.bc, u_high, u_low, acc,
                insert=(operation == "insert"),
            )
        elif operation == "insert":
            stats = distant_level_update(
                snap, s, state.d[i], state.sigma[i], state.delta[i],
                state.bc, u_high, u_low, acc,
            )
        else:
            # Distance-increasing deletion: correct per-source
            # recompute fallback, charged at static cost.
            stats = self._recompute_source(snap, i, acc)
        return acc.finish(), stats

    def _apply_looped(
        self,
        u: int,
        v: int,
        operation: str,
        classifications: Optional[list] = None,
    ) -> UpdateReport:
        """The original per-source loop: classify, account, and cost
        each of the k sources independently.  Kept as the reference
        implementation (``vectorized=False``) that the fast path is
        differentially tested against."""
        snap = self.graph.snapshot()
        state = self.state
        k = state.num_sources
        cases = np.empty(k, dtype=np.int8)
        per_source = np.zeros(k, dtype=np.float64)
        touched = np.zeros(k, dtype=np.int64)
        stats_list: List[Optional[UpdateStats]] = [None] * k
        stage_seconds: Dict[str, float] = {}
        counters = KernelCounters()
        access = cpu_access_cycles(self.device, snap.num_vertices, 2 * snap.num_edges)
        timer = WallTimer()
        with timer:
            for i in range(k):
                if classifications is None:
                    case, u_high, u_low = classify_insertion(state.d[i], u, v)
                else:
                    case, u_high, u_low = classifications[i]
                cases[i] = int(case)
                trace, stats = self._run_source(
                    snap, i, case, int(u_high), int(u_low), operation, access
                )
                per_source[i] = self.cost_model.trace_seconds(trace)
                for stage, sec in self.cost_model.stage_breakdown(trace).items():
                    stage_seconds[stage] = stage_seconds.get(stage, 0.0) + sec
                counters.absorb(trace, kernel=f"{operation}-case{int(case)}")
                if stats is not None:
                    touched[i] = stats.touched
                    stats_list[i] = stats
        return self._finish_report(
            u, v, operation, cases, per_source, touched, stats_list,
            stage_seconds, counters, timer,
        )

    def _apply_vectorized(
        self,
        u: int,
        v: int,
        operation: str,
        classifications=None,
    ) -> UpdateReport:
        """The multi-source fast path: classify all k sources in one
        NumPy pass and bulk-charge the (typically dominant — Fig. 2)
        Case-1 population, falling into the per-source machinery only
        for the few sources with real work.

        Every reported artifact is bit-identical to
        :meth:`_apply_looped`: the Case-1 per-source cost is the shared
        classify step's cost, the classify stage total reproduces the
        loop's sequential float accumulation via
        :meth:`~repro.gpu.costmodel.CostModel.fold_step_seconds`, and
        the counters bulk-charge scales exactly
        (:meth:`~repro.gpu.counters.KernelCounters.absorb_step_repeated`).
        """
        snap = self.graph.snapshot()
        state = self.state
        k = state.num_sources
        per_source = np.zeros(k, dtype=np.float64)
        touched = np.zeros(k, dtype=np.int64)
        stats_list: List[Optional[UpdateStats]] = [None] * k
        stage_seconds: Dict[str, float] = {}
        counters = KernelCounters()
        access = cpu_access_cycles(self.device, snap.num_vertices, 2 * snap.num_edges)
        timer = WallTimer()
        with timer:
            if classifications is None:
                cases, highs, lows = classify_insertions_batch(state.d, u, v)
            else:
                cases, highs, lows = classifications
            same_mask = cases == int(Case.SAME_LEVEL)
            num_same = int(np.count_nonzero(same_mask))
            # Case 1 in bulk: each such source's whole trace is the one
            # classify step, so its simulated time is that step's cost.
            classify_sec = self.cost_model.step_seconds(CLASSIFY_STEP)
            per_source[same_mask] = classify_sec
            if k:
                # The loop adds classify_sec to one accumulator exactly
                # once per source (all k of them); reproduce that fold.
                stage_seconds["classify"] = self.cost_model.fold_step_seconds(
                    CLASSIFY_STEP, k
                )
            counters.absorb_step_repeated(
                CLASSIFY_STEP, num_same,
                kernel=f"{operation}-case{int(Case.SAME_LEVEL)}",
            )
            for i in np.flatnonzero(~same_mask):
                i = int(i)
                case = Case(int(cases[i]))
                trace, stats = self._run_source(
                    snap, i, case, int(highs[i]), int(lows[i]), operation,
                    access,
                )
                per_source[i] = self.cost_model.trace_seconds(trace)
                for stage, sec in self.cost_model.stage_breakdown(trace).items():
                    if stage == "classify":
                        continue  # already folded into the bulk total
                    stage_seconds[stage] = stage_seconds.get(stage, 0.0) + sec
                counters.absorb(trace, kernel=f"{operation}-case{int(case)}")
                if stats is not None:
                    touched[i] = stats.touched
                    stats_list[i] = stats
        return self._finish_report(
            u, v, operation, np.asarray(cases, dtype=np.int8), per_source,
            touched, stats_list, stage_seconds, counters, timer,
        )

    def _finish_report(
        self, u, v, operation, cases, per_source, touched, stats_list,
        stage_seconds, counters, timer,
    ) -> UpdateReport:
        """Schedule the costed sources onto the device and assemble the
        :class:`UpdateReport` (shared tail of both update paths)."""
        timing = schedule_blocks(
            per_source, self.device, self.num_blocks,
            _LAUNCHES_PER_UPDATE * self.cost_model.launch_overhead_seconds,
        )
        counters.kernel_launches += _LAUNCHES_PER_UPDATE
        self.counters = self.counters.merged(counters)
        return UpdateReport(
            edge=(u, v),
            operation=operation,
            cases=cases,
            per_source_seconds=per_source,
            simulated_seconds=timing.total_seconds,
            wall_seconds=timer.elapsed,
            touched=touched,
            counters=counters,
            stats=stats_list,
            stage_seconds=stage_seconds,
        )

    def _recompute_source(self, snap: CSRGraph, i: int, acc) -> UpdateStats:
        """Replace source *i*'s rows with a fresh Brandes pass and patch
        BC by the dependency difference; cost = one static source.

        The incremental BC patch is only correct when the stored row is
        trusted (the normal Case-3 deletion fallback); recovery from a
        *corrupted* row goes through :meth:`repair_source` instead.
        """
        state = self.state
        delta_old = state.delta[i].copy()
        stats = self._rebuild_row(snap, i, acc)
        state.bc += state.delta[i] - delta_old
        return stats

    def _rebuild_row(self, snap: CSRGraph, i: int, acc) -> UpdateStats:
        """Overwrite source *i*'s ``d``/``sigma``/``delta`` rows with a
        fresh Brandes pass (BC untouched) and charge the static
        per-source trace to *acc*."""
        state = self.state
        s = int(state.sources[i])
        # Brandes writes straight into the state rows (no transient
        # triple — same O(n + m) scratch guarantee as BCState.compute),
        # which also keeps shm-adopted rows in place under workers > 1.
        _, _, _, levels = single_source_state(
            snap, s, out=(state.d[i], state.sigma[i], state.delta[i])
        )
        state.delta[i, s] = 0.0
        # Charge the static per-source trace under the nearest static
        # strategy (backend variants like gpu-node-atomic share the
        # node-parallel static cost profile).
        access = cpu_access_cycles(self.device, snap.num_vertices, 2 * snap.num_edges)
        _, trace = trace_static_source(
            snap, s, self._static_strategy(), self.op_costs, access
        )
        acc.trace.extend(trace)
        touched = int(np.count_nonzero(state.d[i] != DIST_INF))
        return UpdateStats(touched=touched, moved=0,
                           sp_levels=len(levels), dep_levels=len(levels) - 1)

    def __repr__(self) -> str:
        return (
            f"DynamicBC(backend={self.backend!r}, n={self.graph.num_vertices}, "
            f"m={self.graph.num_edges}, k={self.state.num_sources})"
        )
