"""Unified dynamic-BC engine.

:class:`DynamicBC` owns a mutable graph plus the per-source state and
applies streaming edge insertions/deletions under one of the
execution strategies ("backends"):

* ``"cpu"``             — Green et al.'s sequential algorithm on the i7 model;
* ``"gpu-edge"``        — edge-parallel kernels on the virtual GPU;
* ``"gpu-node"``        — node-parallel kernels on the virtual GPU;
* ``"gpu-node-atomic"`` — the §III-A atomic-dedup variant (ablation).

Every update returns an :class:`UpdateReport` carrying the per-source
case distribution (Fig. 2), touched counts (Fig. 4), simulated seconds
(Tables II/III) and wall-clock seconds of the vectorized execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bc.accountants import ACCOUNTANTS, CLASSIFY_STEP, make_accountant
from repro.bc.brandes import single_source_state
from repro.bc.cases import (
    Case,
    classify_deletion,
    classify_deletions_batch,
    classify_insertion,
    classify_insertions_batch,
)
from repro.bc.state import BCState
from repro.bc.static_gpu import trace_static_source
from repro.bc.update_core import (
    UpdateStats,
    adjacent_level_update,
    distant_level_update,
)
from repro.gpu.costmodel import (
    DEFAULT_OP_COSTS,
    CostModel,
    OpCosts,
    cpu_access_cycles,
)
from repro.gpu.counters import KernelCounters
from repro.gpu.device import CORE_I7_2600K, TESLA_C2075, DeviceSpec
from repro.gpu.executor import schedule_blocks
from repro.graph.csr import CSRGraph, DIST_INF
from repro.graph.dynamic import DynamicGraph
from repro.resilience.errors import UpdateError
from repro.resilience.transactions import UpdateTransaction
from repro.utils.prng import SeedLike
from repro.utils.timing import WallTimer

#: valid backend names
BACKENDS = tuple(sorted(ACCOUNTANTS))

#: kernels launched per update on the GPU (init, SP, dep, commit)
_LAUNCHES_PER_UPDATE = 4


@dataclass
class UpdateReport:
    """Everything observable about one streaming update."""

    edge: tuple
    operation: str  # "insert" | "delete"
    cases: np.ndarray  # int8[k], per-source scenario
    per_source_seconds: np.ndarray  # float64[k], simulated
    simulated_seconds: float  # scheduled makespan of the whole update
    wall_seconds: float
    touched: np.ndarray  # int64[k], |{v : t[v] != untouched}| per source
    counters: KernelCounters
    stats: List[Optional[UpdateStats]] = field(default_factory=list)
    #: simulated seconds per kernel stage, summed over all sources
    #: (keys: classify, init, sp, dep, pull, prepass, dedup, commit)
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def case_histogram(self) -> Dict[int, int]:
        values, counts = np.unique(self.cases, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


@dataclass
class BatchResult:
    """Outcome of a batch mutation (:meth:`DynamicBC.insert_edges` /
    :meth:`DynamicBC.delete_edges`): one report per applied edge plus
    the pairs that were skipped (already present / absent / self loop)
    instead of silently dropping them.

    Iterating or ``len()``-ing the result walks the applied reports, so
    stream-replay style callers keep working unchanged.
    """

    reports: List[UpdateReport] = field(default_factory=list)
    skipped: List[Tuple[int, int]] = field(default_factory=list)

    def __iter__(self) -> Iterator[UpdateReport]:
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)


class DynamicBC:
    """Streaming betweenness centrality with stored per-source state."""

    def __init__(
        self,
        graph: Union[DynamicGraph, CSRGraph],
        state: BCState,
        backend: str = "gpu-node",
        device: Optional[DeviceSpec] = None,
        num_blocks: int = 0,
        op_costs: OpCosts = DEFAULT_OP_COSTS,
        vectorized: bool = True,
        transactional: bool = True,
    ) -> None:
        if backend not in ACCOUNTANTS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.graph = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph.from_csr(graph)
        )
        if state.num_vertices != self.graph.num_vertices:
            raise ValueError(
                f"state has {state.num_vertices} vertices, graph has "
                f"{self.graph.num_vertices}"
            )
        self.state = state
        self.backend = backend
        if device is None:
            device = CORE_I7_2600K if backend == "cpu" else TESLA_C2075
        self.device = device
        self.cost_model = CostModel(device, num_blocks)
        self.num_blocks = self.cost_model.num_blocks
        self.op_costs = op_costs
        #: escape hatch for the differential tests: ``False`` runs the
        #: original per-source classification loop instead of the
        #: vectorized multi-source fast path (identical reports either
        #: way — see tests/test_engine_vectorized.py).
        self.vectorized = bool(vectorized)
        #: ``True`` makes every update atomic: a mid-update exception
        #: rolls graph, state rows, BC scores and counters back to
        #: their pre-update values and surfaces a structured
        #: :class:`~repro.resilience.errors.UpdateError`.
        self.transactional = bool(transactional)
        self._txn: Optional[UpdateTransaction] = None
        self.counters = KernelCounters()

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: Union[DynamicGraph, CSRGraph],
        num_sources: Optional[int] = None,
        sources: Optional[Sequence[int]] = None,
        backend: str = "gpu-node",
        device: Optional[DeviceSpec] = None,
        num_blocks: int = 0,
        seed: SeedLike = None,
        op_costs: OpCosts = DEFAULT_OP_COSTS,
        vectorized: bool = True,
        transactional: bool = True,
    ) -> "DynamicBC":
        """Build the engine, computing the initial state with Brandes.

        Give either ``sources`` explicitly or ``num_sources`` random
        ones (``None`` means exact BC over all vertices).
        """
        snap = graph.snapshot() if isinstance(graph, DynamicGraph) else graph
        if sources is not None:
            state = BCState.compute(snap, sources)
        elif num_sources is not None:
            state = BCState.compute_with_random_sources(snap, num_sources, seed)
        else:
            state = BCState.compute(snap, range(snap.num_vertices))
        return cls(graph, state, backend, device, num_blocks, op_costs,
                   vectorized, transactional)

    # ------------------------------------------------------------------
    @property
    def bc_scores(self) -> np.ndarray:
        """Current (approximate) BC scores — live view, do not mutate."""
        return self.state.bc

    @property
    def sources(self) -> np.ndarray:
        return self.state.sources

    def top_k(self, k: int = 10) -> List:
        """The k most central vertices right now, as ``(vertex, score)``
        pairs in descending order — §II-A: "Typically the vertices with
        the highest BC scores are of particular interest"."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, self.state.num_vertices)
        order = np.argsort(self.state.bc)[::-1][:k]
        return [(int(v), float(self.state.bc[v])) for v in order]

    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> UpdateReport:
        """Insert edge {u, v} and update the analytic.

        Raises :class:`ValueError` if the edge already exists or is a
        self loop (the suite graphs are simple).
        """
        if not self.graph.insert_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already present or self loop")
        return self._apply(u, v, operation="insert")

    def delete_edge(self, u: int, v: int) -> UpdateReport:
        """Delete edge {u, v} and update the analytic (extension; see
        :mod:`repro.bc.deletion` for the algorithmic background)."""
        if not self.graph.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) not present")
        # Classification needs the pre-deletion adjacency (to find
        # alternative predecessors of u_low).
        pre_snap = self.graph.snapshot()
        if self.vectorized:
            classifications = classify_deletions_batch(
                self.state.d, self.state.sigma, pre_snap, u, v
            )
        else:
            classifications = [
                classify_deletion(self.state.d[i], self.state.sigma[i],
                                  pre_snap, u, v)
                for i in range(self.state.num_sources)
            ]
        self.graph.delete_edge(u, v)
        return self._apply(u, v, operation="delete", classifications=classifications)

    def add_vertex(self) -> int:
        """Append an isolated vertex and extend the stored state.

        Per §II-D: "a node insertion causes no change to existing BC
        scores.  A newly inserted node belongs to its own connected
        component ... and thus has a BC score of 0."  The new column is
        therefore (d=inf, sigma=0, delta=0, bc=0); subsequent
        `insert_edge` calls attach it through the normal Case-3
        component-merge machinery.
        """
        v = self.graph.add_vertex()
        st = self.state
        k = st.num_sources
        st.d = np.column_stack([st.d, np.full(k, DIST_INF, dtype=np.int64)])
        st.sigma = np.column_stack([st.sigma, np.zeros(k)])
        st.delta = np.column_stack([st.delta, np.zeros(k)])
        st.bc = np.append(st.bc, 0.0)
        return v

    def insert_edges(self, edges: Sequence) -> BatchResult:
        """Insert a batch of edges one at a time (the streaming model:
        updates are serialized so each report reflects a consistent
        analytic).  Self loops and edges already present are not
        applied; they are returned in :attr:`BatchResult.skipped`."""
        result = BatchResult()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v or self.graph.has_edge(u, v):
                result.skipped.append((u, v))
                continue
            result.reports.append(self.insert_edge(u, v))
        return result

    def delete_edges(self, edges: Sequence) -> BatchResult:
        """Delete a batch of edges one at a time; absent edges (and
        self loops) land in :attr:`BatchResult.skipped`."""
        result = BatchResult()
        for u, v in edges:
            u, v = int(u), int(v)
            if not self.graph.has_edge(u, v):
                result.skipped.append((u, v))
                continue
            result.reports.append(self.delete_edge(u, v))
        return result

    def recompute(self) -> None:
        """Throw the state away and rebuild it with Brandes (the static
        recomputation the dynamic algorithm is measured against)."""
        self.state = BCState.compute(self.graph.snapshot(), self.state.sources)

    def verify(self, atol: float = 1e-6) -> None:
        """Assert the incrementally-maintained state matches scratch."""
        self.state.verify_against(self.graph.snapshot(), atol=atol)

    def spot_check(self, num_sources: int = 4, seed: SeedLike = None,
                   atol: float = 1e-6) -> None:
        """Cheap integrity check: recompute a random sample of source
        rows from scratch and compare (full :meth:`verify` is O(k m)).

        Catches state corruption without paying the full verification
        cost on every step of a long stream.  BC scores are sums over
        *all* sources, so they are only checked by :meth:`verify`.
        """
        from repro.utils.prng import default_rng

        from repro.resilience.guards import check_rows_against_scratch

        rng = default_rng(seed)
        k = self.state.num_sources
        picks = rng.choice(k, size=min(num_sources, k), replace=False)
        bad = check_rows_against_scratch(self, picks, atol=atol)
        if bad:
            i, component = bad[0]
            raise AssertionError(
                f"{component} row corrupt for source {int(self.state.sources[i])}"
            )

    def check_rows(self, indices: Sequence[int], atol: float = 1e-6) -> List[int]:
        """Return the subset of source-row *indices* whose stored
        ``d``/``sigma``/``delta`` rows differ from a from-scratch
        single-source recomputation (the guard's detection primitive;
        :meth:`spot_check` is the raising wrapper)."""
        from repro.resilience.guards import check_rows_against_scratch

        return [i for i, _ in check_rows_against_scratch(self, indices, atol=atol)]

    def repair_source(self, i: int) -> UpdateStats:
        """Rebuild source row *i* from scratch and restore the
        ``bc = Σ delta`` invariant.

        This is the targeted recovery path for a *corrupted* row: the
        stored row cannot be trusted, so its BC contribution is not
        subtracted incrementally (that would bake the corruption into
        the scores); instead the row is replaced by a fresh Brandes
        pass and ``bc`` is re-folded from all stored rows.  Charged to
        the counters as one static source under the ``"repair"``
        kernel tag.  Returns the pass's :class:`UpdateStats`.
        """
        k = self.state.num_sources
        if not 0 <= i < k:
            raise IndexError(f"source index {i} out of range for k={k}")
        snap = self.graph.snapshot()
        access = cpu_access_cycles(self.device, snap.num_vertices,
                                   2 * snap.num_edges)
        acc = make_accountant(
            self.backend, snap.num_vertices, 2 * snap.num_edges,
            self.op_costs, label=f"repair:{int(self.state.sources[i])}",
            access_cycles=access if self.backend == "cpu" else None,
        )
        stats = self._rebuild_row(snap, i, acc)
        self.state.rebuild_bc()
        counters = KernelCounters()
        counters.absorb(acc.finish(), kernel="repair")
        self.counters = self.counters.merged(counters)
        return stats

    def memory_report(self) -> Dict[str, int]:
        """Bytes held by the O(kn) supplemental state (§II-D: "This
        added storage increases the space complexity to ... O(kn) for
        approximate BC computation ... the performance gain is well
        worth the extra space").  Keys: per stored array plus 'total'.
        """
        st = self.state
        report = {
            "d": st.d.nbytes,
            "sigma": st.sigma.nbytes,
            "delta": st.delta.nbytes,
            "bc": st.bc.nbytes,
            "graph_csr": (
                self.graph.snapshot().row_offsets.nbytes
                + self.graph.snapshot().col_indices.nbytes
            ),
        }
        report["total"] = sum(report.values())
        return report

    # ------------------------------------------------------------------
    def _apply(
        self,
        u: int,
        v: int,
        operation: str,
        classifications=None,
    ) -> UpdateReport:
        if not self.transactional:
            if self.vectorized:
                return self._apply_vectorized(u, v, operation, classifications)
            return self._apply_looped(u, v, operation, classifications)
        # Transactional path: journal every piece the update mutates
        # (edge, touched state rows, bc, counters) and roll all of it
        # back on any mid-update exception, so a failed update simply
        # never happened (see repro.resilience.transactions).
        txn = UpdateTransaction(self, u, v, operation)
        self._txn = txn
        try:
            if self.vectorized:
                return self._apply_vectorized(u, v, operation, classifications)
            return self._apply_looped(u, v, operation, classifications)
        except Exception as exc:
            failed_at = txn.current_source
            txn.rollback()
            raise UpdateError(
                (u, v), operation, exc, source_index=failed_at,
                rolled_back=True,
            ) from exc
        finally:
            self._txn = None

    def _run_source(
        self, snap: CSRGraph, i: int, case: Case, u_high: int, u_low: int,
        operation: str, access: float,
    ):
        """Execute one source's update (any case) and return its
        ``(trace, stats)``.  Shared verbatim by the looped and
        vectorized paths so their per-source work is identical."""
        if self._txn is not None:
            self._txn.save_row(i)
        state = self.state
        s = int(state.sources[i])
        acc = make_accountant(
            self.backend, snap.num_vertices, 2 * snap.num_edges,
            self.op_costs, label=f"{operation}:{s}",
            access_cycles=access if self.backend == "cpu" else None,
        )
        acc.classify()
        if case == Case.SAME_LEVEL:
            stats = None
        elif case == Case.ADJACENT_LEVEL:
            stats = adjacent_level_update(
                snap, s, state.d[i], state.sigma[i], state.delta[i],
                state.bc, u_high, u_low, acc,
                insert=(operation == "insert"),
            )
        elif operation == "insert":
            stats = distant_level_update(
                snap, s, state.d[i], state.sigma[i], state.delta[i],
                state.bc, u_high, u_low, acc,
            )
        else:
            # Distance-increasing deletion: correct per-source
            # recompute fallback, charged at static cost.
            stats = self._recompute_source(snap, i, acc)
        return acc.finish(), stats

    def _apply_looped(
        self,
        u: int,
        v: int,
        operation: str,
        classifications: Optional[list] = None,
    ) -> UpdateReport:
        """The original per-source loop: classify, account, and cost
        each of the k sources independently.  Kept as the reference
        implementation (``vectorized=False``) that the fast path is
        differentially tested against."""
        snap = self.graph.snapshot()
        state = self.state
        k = state.num_sources
        cases = np.empty(k, dtype=np.int8)
        per_source = np.zeros(k, dtype=np.float64)
        touched = np.zeros(k, dtype=np.int64)
        stats_list: List[Optional[UpdateStats]] = [None] * k
        stage_seconds: Dict[str, float] = {}
        counters = KernelCounters()
        access = cpu_access_cycles(self.device, snap.num_vertices, 2 * snap.num_edges)
        timer = WallTimer()
        with timer:
            for i in range(k):
                if classifications is None:
                    case, u_high, u_low = classify_insertion(state.d[i], u, v)
                else:
                    case, u_high, u_low = classifications[i]
                cases[i] = int(case)
                trace, stats = self._run_source(
                    snap, i, case, int(u_high), int(u_low), operation, access
                )
                per_source[i] = self.cost_model.trace_seconds(trace)
                for stage, sec in self.cost_model.stage_breakdown(trace).items():
                    stage_seconds[stage] = stage_seconds.get(stage, 0.0) + sec
                counters.absorb(trace, kernel=f"{operation}-case{int(case)}")
                if stats is not None:
                    touched[i] = stats.touched
                    stats_list[i] = stats
        return self._finish_report(
            u, v, operation, cases, per_source, touched, stats_list,
            stage_seconds, counters, timer,
        )

    def _apply_vectorized(
        self,
        u: int,
        v: int,
        operation: str,
        classifications=None,
    ) -> UpdateReport:
        """The multi-source fast path: classify all k sources in one
        NumPy pass and bulk-charge the (typically dominant — Fig. 2)
        Case-1 population, falling into the per-source machinery only
        for the few sources with real work.

        Every reported artifact is bit-identical to
        :meth:`_apply_looped`: the Case-1 per-source cost is the shared
        classify step's cost, the classify stage total reproduces the
        loop's sequential float accumulation via
        :meth:`~repro.gpu.costmodel.CostModel.fold_step_seconds`, and
        the counters bulk-charge scales exactly
        (:meth:`~repro.gpu.counters.KernelCounters.absorb_step_repeated`).
        """
        snap = self.graph.snapshot()
        state = self.state
        k = state.num_sources
        per_source = np.zeros(k, dtype=np.float64)
        touched = np.zeros(k, dtype=np.int64)
        stats_list: List[Optional[UpdateStats]] = [None] * k
        stage_seconds: Dict[str, float] = {}
        counters = KernelCounters()
        access = cpu_access_cycles(self.device, snap.num_vertices, 2 * snap.num_edges)
        timer = WallTimer()
        with timer:
            if classifications is None:
                cases, highs, lows = classify_insertions_batch(state.d, u, v)
            else:
                cases, highs, lows = classifications
            same_mask = cases == int(Case.SAME_LEVEL)
            num_same = int(np.count_nonzero(same_mask))
            # Case 1 in bulk: each such source's whole trace is the one
            # classify step, so its simulated time is that step's cost.
            classify_sec = self.cost_model.step_seconds(CLASSIFY_STEP)
            per_source[same_mask] = classify_sec
            if k:
                # The loop adds classify_sec to one accumulator exactly
                # once per source (all k of them); reproduce that fold.
                stage_seconds["classify"] = self.cost_model.fold_step_seconds(
                    CLASSIFY_STEP, k
                )
            counters.absorb_step_repeated(
                CLASSIFY_STEP, num_same,
                kernel=f"{operation}-case{int(Case.SAME_LEVEL)}",
            )
            for i in np.flatnonzero(~same_mask):
                i = int(i)
                case = Case(int(cases[i]))
                trace, stats = self._run_source(
                    snap, i, case, int(highs[i]), int(lows[i]), operation,
                    access,
                )
                per_source[i] = self.cost_model.trace_seconds(trace)
                for stage, sec in self.cost_model.stage_breakdown(trace).items():
                    if stage == "classify":
                        continue  # already folded into the bulk total
                    stage_seconds[stage] = stage_seconds.get(stage, 0.0) + sec
                counters.absorb(trace, kernel=f"{operation}-case{int(case)}")
                if stats is not None:
                    touched[i] = stats.touched
                    stats_list[i] = stats
        return self._finish_report(
            u, v, operation, np.asarray(cases, dtype=np.int8), per_source,
            touched, stats_list, stage_seconds, counters, timer,
        )

    def _finish_report(
        self, u, v, operation, cases, per_source, touched, stats_list,
        stage_seconds, counters, timer,
    ) -> UpdateReport:
        """Schedule the costed sources onto the device and assemble the
        :class:`UpdateReport` (shared tail of both update paths)."""
        timing = schedule_blocks(
            per_source, self.device, self.num_blocks,
            _LAUNCHES_PER_UPDATE * self.cost_model.launch_overhead_seconds,
        )
        counters.kernel_launches += _LAUNCHES_PER_UPDATE
        self.counters = self.counters.merged(counters)
        return UpdateReport(
            edge=(u, v),
            operation=operation,
            cases=cases,
            per_source_seconds=per_source,
            simulated_seconds=timing.total_seconds,
            wall_seconds=timer.elapsed,
            touched=touched,
            counters=counters,
            stats=stats_list,
            stage_seconds=stage_seconds,
        )

    def _recompute_source(self, snap: CSRGraph, i: int, acc) -> UpdateStats:
        """Replace source *i*'s rows with a fresh Brandes pass and patch
        BC by the dependency difference; cost = one static source.

        The incremental BC patch is only correct when the stored row is
        trusted (the normal Case-3 deletion fallback); recovery from a
        *corrupted* row goes through :meth:`repair_source` instead.
        """
        state = self.state
        delta_old = state.delta[i].copy()
        stats = self._rebuild_row(snap, i, acc)
        state.bc += state.delta[i] - delta_old
        return stats

    def _rebuild_row(self, snap: CSRGraph, i: int, acc) -> UpdateStats:
        """Overwrite source *i*'s ``d``/``sigma``/``delta`` rows with a
        fresh Brandes pass (BC untouched) and charge the static
        per-source trace to *acc*."""
        state = self.state
        s = int(state.sources[i])
        d_new, sigma_new, delta_new, levels = single_source_state(snap, s)
        delta_new[s] = 0.0
        state.d[i] = d_new
        state.sigma[i] = sigma_new
        state.delta[i] = delta_new
        # Charge the static per-source trace under the nearest static
        # strategy (backend variants like gpu-node-atomic share the
        # node-parallel static cost profile).
        from repro.bc.static_gpu import STATIC_STRATEGIES

        strategy = self.backend if self.backend in STATIC_STRATEGIES else (
            "cpu" if self.backend == "cpu" else "gpu-node"
        )
        access = cpu_access_cycles(self.device, snap.num_vertices, 2 * snap.num_edges)
        _, trace = trace_static_source(snap, s, strategy, self.op_costs, access)
        acc.trace.extend(trace)
        touched = int(np.count_nonzero(d_new != DIST_INF))
        return UpdateStats(touched=touched, moved=0,
                           sp_levels=len(levels), dep_levels=len(levels) - 1)

    def __repr__(self) -> str:
        return (
            f"DynamicBC(backend={self.backend!r}, n={self.graph.num_vertices}, "
            f"m={self.graph.num_edges}, k={self.state.num_sources})"
        )
