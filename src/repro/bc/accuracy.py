"""Approximation-quality metrics for source-sampled BC.

The paper approximates BC with k = 256 random sources (§II-B, [11]) and
notes that "the relative ranking of the vertices tends to be more
informative than the magnitude of their scores" (§II-A).  These metrics
quantify that: top-k overlap, Kendall's tau on the top ranks, and error
statistics — used by the k-sweep ablation bench.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy import stats as sp_stats


def top_k_overlap(approx: np.ndarray, exact: np.ndarray, k: int = 10) -> float:
    """Fraction of the exact top-k vertices recovered by the
    approximation's top-k (1.0 = perfect)."""
    if approx.shape != exact.shape:
        raise ValueError("score vectors must have the same shape")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, approx.size)
    top_a = set(np.argsort(approx)[::-1][:k].tolist())
    top_e = set(np.argsort(exact)[::-1][:k].tolist())
    return len(top_a & top_e) / k


def kendall_tau_topk(approx: np.ndarray, exact: np.ndarray, k: int = 0) -> float:
    """Kendall rank correlation between the two score vectors,
    restricted to the exact top-k vertices (k=0 means all)."""
    if approx.shape != exact.shape:
        raise ValueError("score vectors must have the same shape")
    if k:
        idx = np.argsort(exact)[::-1][: min(k, exact.size)]
        approx, exact = approx[idx], exact[idx]
    if approx.size < 2 or np.allclose(exact, exact[0]):
        return 1.0
    tau, _ = sp_stats.kendalltau(approx, exact)
    return float(tau) if tau == tau else 0.0  # NaN -> 0


def ranking_metrics(
    approx: np.ndarray, exact: np.ndarray, k: int = 10
) -> Dict[str, float]:
    """Bundle of comparison metrics.

    The approximation is rescaled by ``n / k_sources`` before absolute
    errors are taken only if the caller already did so; this function
    compares the vectors as given.
    """
    denom = np.abs(exact).max()
    rel_err = (
        float(np.abs(approx - exact).max() / denom) if denom > 0 else 0.0
    )
    return {
        "top_k_overlap": top_k_overlap(approx, exact, k),
        "kendall_tau_topk": kendall_tau_topk(approx, exact, max(k, 2)),
        "kendall_tau_all": kendall_tau_topk(approx, exact, 0),
        "max_rel_error": rel_err,
    }
