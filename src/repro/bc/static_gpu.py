"""Static BC on the virtual GPU (Jia et al. style).

This plays two roles in the reproduction:

* the **recomputation baseline** of Table III ("the implementation
  available from [13]" — edge-parallel, which Jia et al. found best for
  static BC);
* the workload of the **Fig. 1 thread-block sweep**, which retimes the
  same per-source traces under varying grid sizes.

Strategies:

* ``"gpu-edge"`` — one thread per arc, every BFS/accumulation level
  scans all ``2m`` arcs.
* ``"gpu-node"`` — one thread per *vertex*, every level scans all ``n``
  vertices; active vertices additionally walk their adjacency.
* ``"cpu"`` — sequential Brandes: useful work only.

All strategies produce identical scores (they share the vectorized
state math of :mod:`repro.bc.brandes`); only the traces differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bc.brandes import single_source_state
from repro.gpu.costmodel import DEFAULT_OP_COSTS, CostModel, OpCosts
from repro.gpu.counters import KernelCounters, Trace
from repro.gpu.device import DeviceSpec
from repro.gpu.executor import KernelTiming, schedule_blocks
from repro.graph.csr import CSRGraph
from repro.sanitize import tracer as san
from repro.sanitize.report import SanitizerReport

STATIC_STRATEGIES = ("gpu-edge", "gpu-node", "cpu")


@dataclass
class StaticBCResult:
    """Scores plus retimeable per-source traces."""

    bc: np.ndarray
    traces: List[Trace]
    counters: KernelCounters
    strategy: str
    #: race-sanitizer report of the per-source kernels, present when
    #: the run was started with ``sanitize=True``
    sanitizer: Optional[SanitizerReport] = None

    def timing(self, device: DeviceSpec, num_blocks: int = 0) -> KernelTiming:
        """Schedule the stored traces on (device, grid) — used by the
        Fig. 1 sweep to compare block counts without re-running BFS."""
        model = CostModel(device, num_blocks)
        per_source = [model.trace_seconds(t) for t in self.traces]
        return schedule_blocks(
            per_source, device, model.num_blocks, model.launch_overhead_seconds
        )


def _charge_level(
    trace: Trace,
    strategy: str,
    ops: OpCosts,
    n: int,
    arcs_total: int,
    frontier: int,
    frontier_arcs: int,
    updates: int,
    access_cycles: float,
) -> None:
    """One barrier-delimited level of either stage."""
    if strategy == "gpu-edge":
        trace.add(
            arcs_total,
            ops.edge_check_cycles,
            arcs_total * ops.edge_check_bytes + updates * ops.edge_hit_bytes,
            atomic_ops=updates,
        )
    elif strategy == "gpu-node":
        trace.add(
            n + frontier_arcs,
            ops.arc_scan_cycles,
            n * 5.0 + frontier_arcs * ops.arc_scan_bytes
            + updates * ops.edge_hit_bytes,
            atomic_ops=updates,
        )
    else:  # cpu: useful work only
        trace.add(
            frontier + frontier_arcs + updates,
            access_cycles,
            frontier * ops.node_pop_bytes
            + frontier_arcs * ops.arc_scan_bytes
            + updates * ops.edge_hit_bytes,
        )


def trace_static_source(
    graph: CSRGraph,
    source: int,
    strategy: str = "gpu-edge",
    op_costs: OpCosts = DEFAULT_OP_COSTS,
    access_cycles: float = 0.0,
) -> tuple:
    """Run one source of static Brandes and produce ``(delta, trace)``.

    Also used by the dynamic engines to cost their per-source
    recompute fallback (distance-increasing deletions).
    """
    if strategy not in STATIC_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STATIC_STRATEGIES}"
        )
    ops = op_costs
    if access_cycles <= 0.0:
        access_cycles = ops.arc_scan_cycles
    n = graph.num_vertices
    arcs_total = 2 * graph.num_edges
    trace = Trace(label=f"static:{source}")
    d, sigma, delta, levels = single_source_state(graph, source)
    # Stage 1: initialization of d/sigma/delta.
    trace.add(n, ops.init_cycles, ops.init_bytes * n)
    # Stage 2: BFS levels.
    degrees = graph.degrees
    for depth, frontier in enumerate(levels):
        f_arcs = int(degrees[frontier].sum())
        # sigma updates = arcs into the next level
        nxt = levels[depth + 1] if depth + 1 < len(levels) else None
        if nxt is not None:
            t_, h_ = graph.frontier_arcs(frontier)
            updates = int(np.count_nonzero(d[h_] == depth + 1))
        else:
            updates = 0
        _charge_level(trace, strategy, ops, n, arcs_total,
                      frontier.size, f_arcs, updates, access_cycles)
    # Stage 3: dependency accumulation, deepest level first.
    for depth in range(len(levels) - 1, 0, -1):
        frontier = levels[depth]
        f_arcs = int(degrees[frontier].sum())
        t_, h_ = graph.frontier_arcs(frontier)
        updates = int(np.count_nonzero(d[h_] == depth - 1))
        _charge_level(trace, strategy, ops, n, arcs_total,
                      frontier.size, f_arcs, updates, access_cycles)
    # Final BC accumulation.
    trace.add(n, ops.commit_cycles, 16.0 * n, atomic_ops=n)
    return delta, trace


def static_bc_gpu(
    graph: CSRGraph,
    sources: Optional[Sequence[int]] = None,
    strategy: str = "gpu-edge",
    op_costs: OpCosts = DEFAULT_OP_COSTS,
    access_cycles: float = 0.0,
    sanitize: bool = False,
) -> StaticBCResult:
    """Static (exact or approximate) BC with per-source cost traces.

    ``sanitize=True`` races-checks every per-source kernel and attaches
    the :class:`SanitizerReport` to the result; scores, traces and
    counters are bit-identical to the untraced run.
    """
    if sanitize:
        tracer = san.MemoryTracer()
        with san.tracing(tracer):
            result = static_bc_gpu(graph, sources, strategy, op_costs,
                                   access_cycles)
        result.sanitizer = tracer.report()
        return result
    n = graph.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    iter_sources = range(n) if sources is None else [int(s) for s in sources]
    traces: List[Trace] = []
    counters = KernelCounters()
    for s in iter_sources:
        delta, trace = trace_static_source(
            graph, int(s), strategy, op_costs, access_cycles
        )
        delta[int(s)] = 0.0
        bc += delta
        traces.append(trace)
        counters.absorb(trace, kernel="static")
    counters.kernel_launches += 2  # forward + backward megakernels
    return StaticBCResult(bc=bc, traces=traces, counters=counters, strategy=strategy)
