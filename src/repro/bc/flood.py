"""Literal Algorithm 4/6 semantics: the unguarded edge-parallel update.

The paper's Algorithm 4 pseudocode tests only ``d[v] = current_depth``
and ``d[w] = current_depth + 1`` before marking ``t[w] <- down`` — it
never checks that ``v`` itself was touched.  Read literally, the first
level therefore marks *every* vertex one level below ``u_low``'s level
(each has some predecessor arc), and the flood continues to the bottom
of the BFS: the update ends up recomputing the dependency of the entire
cone below ``d[u_low]``, not just the affected subset.

The result is still *correct*: σ̂ only changes where real deltas
propagate (untouched arcs add σ̂[v] − σ[v] = 0), and the dependency
stage's add-new/subtract-old structure makes δ̂ a full recomputation
for flooded vertices (for a "down" vertex every successor is also
flooded, so δ̂ is rebuilt from scratch; for an "up" vertex δ̂ starts at
δ and each old contribution is retired exactly once).

Production implementations guard on touched vertices — the main
engines here do (see :mod:`repro.bc.update_core`) — but this module
implements the literal semantics so the flood's cost can be measured:
``benchmarks/bench_ablation_flood.py`` shows how much of the
edge-parallel strategy's reputation is earned by this amplification.

The flood kernel is instrumented for the race sanitizer like the
guarded kernels (same barrier intervals, accumulation through the
declared atomic helper).  It has no frontier queue to check — flooding
whole levels instead of maintaining Q/Q2/QQ is exactly what
distinguishes it — so it produces no S103 traffic.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.bc.accountants import UpdateAccountant
from repro.bc.update_core import DOWN, UNTOUCHED, UP, UpdateStats, _commit
from repro.gpu.primitives import atomic_scatter_add
from repro.graph.csr import CSRGraph, DIST_INF
from repro.sanitize import tracer as san


def flood_adjacent_level_update(
    graph: CSRGraph,
    source: int,
    d: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    bc: np.ndarray,
    u_high: int,
    u_low: int,
    acc: UpdateAccountant,
) -> UpdateStats:
    """Case-2 insertion with the unguarded (flooding) level loop.

    Produces state identical to
    :func:`repro.bc.update_core.adjacent_level_update`, but touches the
    whole cone below ``d[u_low]`` and reports costs accordingly.
    """
    n = graph.num_vertices
    if d[u_low] != d[u_high] + 1:
        raise ValueError("flood update requires d[u_low] == d[u_high] + 1")
    stats = UpdateStats()
    acc.init(n)
    t = np.zeros(n, dtype=np.int8)
    sigma_hat = sigma.copy()
    delta_hat = np.zeros(n, dtype=np.float64)

    # Level buckets of the whole BFS (the flood visits all of them).
    reachable = d != DIST_INF
    max_depth = int(d[reachable].max()) if np.any(reachable) else 0
    by_level: Dict[int, np.ndarray] = {}
    for level in range(max_depth + 1):
        by_level[level] = np.flatnonzero(d == level).astype(np.int64)

    base_level = int(d[u_low])

    with san.kernel(f"flood:{source}"):
        with san.interval("init", base_level):
            sigma_hat[u_low] = sigma[u_low] + sigma[u_high]
            san.write("sigma_hat", [u_low])
            t[u_low] = DOWN
            san.write("t", [u_low], intent="mark")

        # Stage 2 (Algorithm 4, literal): every arc between consecutive
        # levels runs; untouched tails contribute sigma deltas of zero
        # but heads are marked "down" regardless.
        for depth in range(base_level, max_depth):
            frontier = by_level[depth]
            tails, heads = graph.frontier_arcs(frontier)
            tails = tails.astype(np.int64)
            heads = heads.astype(np.int64)
            with san.interval("sp", depth):
                san.read("d", heads)
                on_path = d[heads] == depth + 1
                ot, oh = tails[on_path], heads[on_path]
                san.read("t", oh)
                raw_new = oh[t[oh] == UNTOUCHED]
                if ot.size:
                    san.read("sigma_hat", ot)
                    san.read("sigma", ot)
                    atomic_scatter_add(
                        sigma_hat, oh, sigma_hat[ot] - sigma[ot],
                        array="sigma_hat",
                    )
                new_nodes = np.unique(raw_new)
                if new_nodes.size:
                    t[new_nodes] = DOWN
                    san.write("t", new_nodes, intent="mark")
            acc.sp_level(
                frontier=int(frontier.size),
                arcs=int(tails.size),
                onpath=int(ot.size),
                raw_new=int(raw_new.size),
                new=int(new_nodes.size),
            )
            stats.sp_levels += 1
            # The literal done-flag cannot fire early: every vertex of
            # level depth+1 has a predecessor arc from level depth, so
            # the flood marks whole levels until the BFS bottoms out.

        # Stage 3 (Algorithm 6, literal, with the v/w roles made
        # consistent): every inter-level arc runs from the bottom up,
        # with the same discover/accumulate barrier split as the
        # guarded kernel.
        for level in range(max_depth, 0, -1):
            w_arr = by_level[level]
            w_arr = w_arr[t[w_arr] != UNTOUCHED]
            adds = subs = arcs = new_up_count = 0
            pt = ph = np.empty(0, dtype=np.int64)
            with san.interval("dep-discover", level):
                if w_arr.size:
                    tails, heads = graph.frontier_arcs(w_arr)
                    tails = tails.astype(np.int64)
                    heads = heads.astype(np.int64)
                    arcs = int(tails.size)
                    san.read("d", heads)
                    pred = d[heads] == level - 1
                    pt, ph = tails[pred], heads[pred]
                    san.read("t", ph)
                    new_up = np.unique(ph[t[ph] == UNTOUCHED])
                    if new_up.size:
                        t[new_up] = UP
                        san.write("t", new_up, intent="mark")
                        san.read("delta", new_up)
                        delta_hat[new_up] = delta[new_up]
                        san.write("delta_hat", new_up)
                        new_up_count = int(new_up.size)
            with san.interval("dep-accumulate", level):
                if ph.size:
                    san.read("sigma_hat", ph)
                    san.read("sigma_hat", pt)
                    san.read("delta_hat", pt)
                    atomic_scatter_add(
                        delta_hat, ph,
                        sigma_hat[ph] / sigma_hat[pt] * (1.0 + delta_hat[pt]),
                        array="delta_hat",
                    )
                    adds = int(ph.size)
                    san.read("t", ph)
                    up_pred = (t[ph] == UP) & ~((ph == u_high) & (pt == u_low))
                    sp, sh = pt[up_pred], ph[up_pred]
                    if sp.size:
                        san.read("sigma", sh)
                        san.read("sigma", sp)
                        san.read("delta", sp)
                        atomic_scatter_add(
                            delta_hat, sh,
                            -(sigma[sh] / sigma[sp]) * (1.0 + delta[sp]),
                            array="delta_hat",
                        )
                        subs = int(sp.size)
            acc.dep_level(
                qq=int(np.count_nonzero(t != UNTOUCHED)),
                level_nodes=int(w_arr.size),
                arcs=arcs,
                adds=adds,
                subs=subs,
                new_up=new_up_count,
            )
            stats.dep_levels += 1

    _commit(source, t, d, None, sigma, sigma_hat, delta, delta_hat, bc,
            acc, stats)
    return stats
