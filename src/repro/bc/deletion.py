"""Edge deletion support (extension beyond the paper's evaluation).

The paper restricts its measurements to insertions but argues the
lessons transfer: "edge removal updates require similar algorithmic
techniques to edge insertion updates" (§II-D-1, citing QUBE).  This
repo implements deletions as follows (see also
:func:`repro.bc.cases.classify_deletion`):

* **gap 0** — the deleted edge connected same-level vertices: it lay on
  no shortest path, so nothing changes (the Case-1 dual).
* **gap 1, u_low keeps another predecessor** — distances are preserved;
  the Case-2 machinery runs with a *negative* σ delta
  (``σ̂[u_low] = σ[u_low] − σ[u_high]``) and the removed arc's stale
  dependency contribution is retired explicitly, since the adjacency no
  longer contains it.
* **gap 1, u_high was the only predecessor** — distances grow.  This is
  the genuinely hard decremental case; the engine falls back to a
  correct per-source recompute (charged at static per-source cost), the
  standard practical treatment.

This module adds the streaming protocol helper used by the experiment
drivers (paper §IV: "100 edges are chosen at random to be removed from
the graph ... then reinserted into the graph one at a time").

Deletion kernels themselves live in :mod:`repro.bc.update_core` (the
Case-2 dual and the Case-3 recompute fallback) and therefore run fully
instrumented under the race sanitizer — ``DynamicBC(sanitize=True)``
traces deletion updates exactly like insertions (see
``docs/SANITIZER.md``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.dynamic import DynamicGraph
from repro.utils.prng import SeedLike, default_rng


def removal_reinsertion_protocol(
    graph: DynamicGraph, count: int, seed: SeedLike = None
) -> np.ndarray:
    """Remove *count* random edges from *graph* (mutating it) and
    return them in re-insertion order.

    The caller builds the BC state on the shrunken graph, then replays
    the returned edges through ``DynamicBC.insert_edge`` one at a time
    — exactly the experimental protocol of §IV.
    """
    rng = default_rng(seed)
    removed = graph.remove_random_edges(rng, count)
    return removed


def connectivity_preserving_removals(
    graph: DynamicGraph, count: int, seed: SeedLike = None, max_tries: int = 50
) -> np.ndarray:
    """Like :func:`removal_reinsertion_protocol`, but skip removals that
    would disconnect previously-connected endpoints.

    Useful when an experiment wants to exercise only Cases 1/2 (the
    component-merge sub-variant of Case 3 never arises if connectivity
    is preserved).  Falls back to plain random removal for an edge when
    no connectivity-preserving candidate is found in ``max_tries``.
    """
    rng = default_rng(seed)
    chosen: List[Tuple[int, int]] = []
    for _ in range(count):
        removed = None
        for _ in range(max_tries):
            edges = graph.snapshot().edge_list()
            u, v = edges[int(rng.integers(0, edges.shape[0]))]
            u, v = int(u), int(v)
            graph.delete_edge(u, v)
            from repro.graph.csr import DIST_INF

            still_connected = graph.snapshot().bfs_distances(u)[v] != DIST_INF
            if still_connected:
                removed = (u, v)
                break
            graph.insert_edge(u, v)  # undo and retry
        if removed is None:
            edges = graph.snapshot().edge_list()
            u, v = edges[int(rng.integers(0, edges.shape[0]))]
            graph.delete_edge(int(u), int(v))
            removed = (int(u), int(v))
        chosen.append(removed)
    return np.asarray(chosen, dtype=np.int64)
