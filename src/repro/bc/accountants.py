"""Cost accounting for the three execution strategies.

The *state transitions* of the dynamic update are identical across the
paper's implementations — what differs is how threads are mapped to
units of work, and therefore what each barrier-delimited phase costs:

* :class:`CPUAccountant` — Green et al.'s sequential algorithm: only
  the useful work is executed, one operation at a time (queue pops,
  neighbor scans, σ/δ updates).
* :class:`EdgeParallelAccountant` — Algorithms 4 & 6: every BFS /
  accumulation level re-scans **all** ``2m`` arcs; useful arcs
  additionally pay their update traffic.  This is the "many threads
  that perform an unnecessary comparison" the paper measures.
* :class:`NodeParallelAccountant` — Algorithms 5 & 7: explicit queues.
  The shortest-path stage costs the frontier and its arcs (perfectly
  work-efficient); the dependency stage scans the whole multi-level
  queue ``QQ`` each level (its small inefficiency, §III-B); duplicate
  removal pays the bitonic-sort pipeline of §III-A.

Each accountant accumulates one :class:`~repro.gpu.counters.Trace` per
source update; the cost model and scheduler turn traces into seconds.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.costmodel import DEFAULT_OP_COSTS, OpCosts
from repro.gpu.counters import Step, Trace
from repro.gpu.primitives import bitonic_sort_steps, prefix_sum_steps

#: The exact step :meth:`UpdateAccountant.classify` records — the same
#: for every strategy (reading d[u], d[v] and branching costs the same
#: everywhere).  Exposed so the engine's vectorized fast path can charge
#: a whole Case-1 source population in bulk (one step × count) without
#: constructing ``count`` accountant objects; see
#: :meth:`repro.gpu.counters.KernelCounters.absorb_step_repeated` and
#: :meth:`repro.gpu.costmodel.CostModel.fold_step_seconds`.
CLASSIFY_STEP = Step(
    work_items=1, cycles_per_item=4.0, bytes_moved=8.0, stage="classify"
)


class UpdateAccountant:
    """Base class: defines the event vocabulary of the update kernels.

    Subclasses override the per-event charging; the shared update core
    (:mod:`repro.bc.update_core`) calls these hooks as it executes.
    """

    #: human-readable strategy name (used in reports)
    strategy = "abstract"

    def __init__(
        self,
        num_vertices: int,
        total_arcs: int,
        op_costs: OpCosts = DEFAULT_OP_COSTS,
        label: str = "",
        access_cycles: Optional[float] = None,
    ) -> None:
        self.n = int(num_vertices)
        self.arcs_total = int(total_arcs)
        self.ops = op_costs
        self.trace = Trace(label=label)
        #: per-dependent-load cost; CPU strategies thread the
        #: cache-model value through here (GPU strategies hide latency
        #: with multithreading, so they keep the plain op cost).
        self.access_cycles = (
            op_costs.arc_scan_cycles if access_cycles is None else float(access_cycles)
        )

    # -- shared trivial events -----------------------------------------
    def classify(self) -> None:
        """Read d[u], d[v] and branch (paper: 'figuring out which case
        each source node has to compute is trivial')."""
        # Append the shared frozen step so the bulk (vectorized) path
        # charges the bit-identical quantity per source.
        self.trace.steps.append(CLASSIFY_STEP)

    def init(self, n: int) -> None:
        """Algorithm 3: reset t, copy sigma -> sigma_hat, zero delta_hat."""
        self.trace.add(n, self.ops.init_cycles, self.ops.init_bytes * n,
                       stage="init")

    def commit(self, n: int, touched: int) -> None:
        """Algorithm 8: fold delta_hat/sigma_hat back, atomically add BC."""
        self.trace.add(
            n,
            self.ops.commit_cycles,
            self.ops.commit_bytes * n,
            atomic_ops=touched,
            max_conflict=1,  # one block per source: BC adds rarely collide
            stage="commit",
        )

    # -- stage events (overridden) -------------------------------------
    def sp_level(self, frontier: int, arcs: int, onpath: int,
                 raw_new: int, new: int, max_conflict: int = 1) -> None:
        """One level of the shortest-path stage: *frontier* queued
        vertices scanned *arcs* arcs, *onpath* hit the next level,
        *raw_new* enqueue attempts produced *new* unique vertices."""
        raise NotImplementedError

    def dep_level(self, qq: int, level_nodes: int, arcs: int, adds: int,
                  subs: int, new_up: int, max_conflict: int = 1) -> None:
        """One level of the dependency stage: *qq* entries in the
        multi-level queue, of which *level_nodes* matched this level
        and scanned *arcs* arcs, issuing *adds* new and *subs* retired
        contributions and discovering *new_up* predecessors."""
        raise NotImplementedError

    def pull_level(self, frontier: int, pull_arcs: int, scan_arcs: int,
                   raw_new: int, new: int) -> None:
        """One level of the Case-3 distance/sigma repair: *frontier*
        candidates pulled sigma over *pull_arcs* predecessor arcs and
        scanned *scan_arcs* arcs for the next level."""
        raise NotImplementedError

    def prepass(self, moved: int, arcs: int, subs: int) -> None:
        """The Case-3 pre-pass retiring *moved* vertices' old
        contributions (*subs* of them) over *arcs* scanned arcs."""
        raise NotImplementedError

    def finish(self) -> Trace:
        """Return the accumulated work trace for this source update."""
        return self.trace


class CPUAccountant(UpdateAccountant):
    """Sequential execution: cost tracks exactly the useful operations."""

    strategy = "cpu"

    def init(self, n: int) -> None:
        # Algorithm 2 lines 2-8 construct fresh per-update structures —
        # including the n-level multi-queue QQ — so the sequential
        # baseline pays allocation and scattered writes on top of the
        # array resets (Green et al.'s reference implementation does
        # exactly this).
        self.trace.add(n, 24.0, 1.5 * self.ops.init_bytes * n, stage="init")

    def sp_level(self, frontier, arcs, onpath, raw_new, new, max_conflict=1):
        ops = self.ops
        items = frontier + arcs + onpath + new
        bytes_moved = (
            frontier * ops.node_pop_bytes
            + arcs * ops.arc_scan_bytes
            + onpath * ops.edge_hit_bytes
            + new * 12.0
        )
        self.trace.add_stage("sp", items, self.access_cycles, bytes_moved)

    def dep_level(self, qq, level_nodes, arcs, adds, subs, new_up, max_conflict=1):
        # Sequential dequeue touches only this level's nodes, not all of QQ.
        ops = self.ops
        items = level_nodes + arcs + 2 * (adds + subs) + new_up
        bytes_moved = (
            level_nodes * ops.node_pop_bytes
            + arcs * ops.arc_scan_bytes
            + (adds + subs) * ops.dep_update_bytes
            + new_up * 16.0
        )
        self.trace.add_stage("dep", items, self.access_cycles, bytes_moved)

    def pull_level(self, frontier, pull_arcs, scan_arcs, raw_new, new):
        ops = self.ops
        items = frontier + pull_arcs + scan_arcs + new
        bytes_moved = (
            frontier * ops.node_pop_bytes
            + (pull_arcs + scan_arcs) * ops.arc_scan_bytes
            + new * 12.0
        )
        self.trace.add_stage("pull", items, self.access_cycles, bytes_moved)

    def prepass(self, moved, arcs, subs):
        ops = self.ops
        self.trace.add_stage("prepass", 
            moved + arcs + 2 * subs,
            self.access_cycles,
            moved * ops.node_pop_bytes + arcs * ops.arc_scan_bytes
            + subs * ops.dep_update_bytes,
        )


class EdgeParallelAccountant(UpdateAccountant):
    """One thread per arc, re-launched every level (Algorithms 4 & 6)."""

    strategy = "gpu-edge"

    def sp_level(self, frontier, arcs, onpath, raw_new, new, max_conflict=1):
        ops = self.ops
        self.trace.add_stage("sp", 
            self.arcs_total,  # every arc checks d[v] == current_depth
            ops.edge_check_cycles,
            self.arcs_total * ops.edge_check_bytes + onpath * ops.edge_hit_bytes,
            atomic_ops=onpath,
            max_conflict=max_conflict,
        )

    def dep_level(self, qq, level_nodes, arcs, adds, subs, new_up, max_conflict=1):
        ops = self.ops
        self.trace.add_stage("dep", 
            self.arcs_total,
            ops.edge_check_cycles,
            self.arcs_total * ops.edge_check_bytes
            + (adds + subs) * ops.dep_update_bytes,
            atomic_ops=adds,  # dsv is accumulated in-register, one atomic per hit
            max_conflict=max_conflict,
        )

    def pull_level(self, frontier, pull_arcs, scan_arcs, raw_new, new):
        # Distance relabel pass plus sigma pull pass, each a full scan.
        ops = self.ops
        self.trace.add_stage("pull", 
            2 * self.arcs_total,
            ops.edge_check_cycles,
            2 * self.arcs_total * ops.edge_check_bytes
            + (pull_arcs + scan_arcs) * ops.edge_hit_bytes,
            atomic_ops=pull_arcs,
        )

    def prepass(self, moved, arcs, subs):
        ops = self.ops
        self.trace.add_stage("prepass", 
            self.arcs_total,
            ops.edge_check_cycles,
            self.arcs_total * ops.edge_check_bytes + subs * ops.dep_update_bytes,
            atomic_ops=subs,
        )


class NodeParallelAccountant(UpdateAccountant):
    """One thread per queued vertex (Algorithms 5 & 7)."""

    strategy = "gpu-node"

    def sp_level(self, frontier, arcs, onpath, raw_new, new, max_conflict=1):
        ops = self.ops
        self.trace.add_stage("sp", 
            frontier + arcs,
            ops.arc_scan_cycles,
            frontier * ops.node_pop_bytes + arcs * ops.arc_scan_bytes
            + onpath * ops.edge_hit_bytes,
            atomic_ops=onpath + raw_new,
            # Q2 appends all hit one counter; sigma hits collide per-vertex.
            max_conflict=max(max_conflict, raw_new),
        )
        self._charge_dedup(raw_new, new)
        if new:
            # Transfer unique entries Q2 -> Q and append to QQ (Alg. 5
            # lines 25-28; the QQ append is an atomic counter bump).
            self.trace.add_stage("sp", new, 2.0, 12.0 * new, atomic_ops=new, max_conflict=new)

    def dep_level(self, qq, level_nodes, arcs, adds, subs, new_up, max_conflict=1):
        ops = self.ops
        self.trace.add_stage("dep", 
            qq + arcs,  # every queued vertex re-checks its level (Alg. 7 line 5)
            ops.arc_scan_cycles,
            qq * ops.node_pop_bytes + arcs * ops.arc_scan_bytes
            + (adds + subs) * ops.dep_update_bytes,
            atomic_ops=adds + new_up,
            max_conflict=max(max_conflict, new_up),
        )

    def pull_level(self, frontier, pull_arcs, scan_arcs, raw_new, new):
        ops = self.ops
        self.trace.add_stage("pull", 
            frontier + pull_arcs + scan_arcs,
            ops.arc_scan_cycles,
            frontier * ops.node_pop_bytes
            + (pull_arcs + scan_arcs) * ops.arc_scan_bytes
            + new * 12.0,
            atomic_ops=raw_new,
            max_conflict=raw_new,
        )
        self._charge_dedup(raw_new, new)

    def prepass(self, moved, arcs, subs):
        ops = self.ops
        self.trace.add_stage("prepass", 
            moved + arcs,
            ops.arc_scan_cycles,
            moved * ops.node_pop_bytes + arcs * ops.arc_scan_bytes
            + subs * ops.dep_update_bytes,
            atomic_ops=subs,
        )

    def _charge_dedup(self, raw_len: int, unique_len: int) -> None:
        """Bitonic sort + adjacent compare + prefix sum + scatter
        (§III-A), charged without re-executing the pipeline."""
        if raw_len <= 1:
            return
        p = 1 << (raw_len - 1).bit_length()
        for _ in range(bitonic_sort_steps(raw_len)):
            self.trace.add_stage("dedup", p, 3.0, 8.0 * p)
        self.trace.add_stage("dedup", raw_len, 2.0, 9.0 * raw_len)
        for _ in range(prefix_sum_steps(raw_len)):
            self.trace.add_stage("dedup", raw_len, 2.0, 8.0 * raw_len)
        self.trace.add_stage("dedup", raw_len, 2.0, 4.0 * raw_len + 4.0 * unique_len)


class NodeParallelAtomicDedupAccountant(NodeParallelAccountant):
    """Ablation: node-parallel with atomic test-and-set de-duplication.

    §III-A sketches the alternative the paper rejected: "An atomic
    operation could be used to test and set t[w] ... ensuring that only
    one thread places w into Q2".  That removes the sort/scan pipeline
    but serializes a CAS per discovered arc on hot vertices.  The
    dedup-strategy benchmark compares the two cost profiles.
    """

    strategy = "gpu-node-atomic"

    def sp_level(self, frontier, arcs, onpath, raw_new, new, max_conflict=1):
        ops = self.ops
        self.trace.add_stage("sp", 
            frontier + arcs,
            ops.arc_scan_cycles,
            frontier * ops.node_pop_bytes + arcs * ops.arc_scan_bytes
            + onpath * ops.edge_hit_bytes,
            # one CAS per on-path arc (test-and-set) + sigma atomics +
            # exactly `new` queue appends; CAS conflicts mirror sigma's.
            atomic_ops=2 * onpath + new,
            max_conflict=max(max_conflict, new),
        )
        if new:
            # Q2 holds unique entries already: plain transfer, no sort.
            self.trace.add_stage("sp", new, 2.0, 12.0 * new, atomic_ops=new,
                           max_conflict=new)

    def pull_level(self, frontier, pull_arcs, scan_arcs, raw_new, new):
        ops = self.ops
        self.trace.add_stage("pull", 
            frontier + pull_arcs + scan_arcs,
            ops.arc_scan_cycles,
            frontier * ops.node_pop_bytes
            + (pull_arcs + scan_arcs) * ops.arc_scan_bytes
            + new * 12.0,
            atomic_ops=pull_arcs + scan_arcs,
            max_conflict=max(1, new),
        )


#: strategy name -> accountant class
ACCOUNTANTS = {
    cls.strategy: cls
    for cls in (
        CPUAccountant,
        EdgeParallelAccountant,
        NodeParallelAccountant,
        NodeParallelAtomicDedupAccountant,
    )
}


def make_accountant(
    strategy: str,
    num_vertices: int,
    total_arcs: int,
    op_costs: OpCosts = DEFAULT_OP_COSTS,
    label: str = "",
    access_cycles: Optional[float] = None,
) -> UpdateAccountant:
    """Instantiate the accountant for a strategy name."""
    try:
        cls = ACCOUNTANTS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {sorted(ACCOUNTANTS)}"
        ) from None
    return cls(num_vertices, total_arcs, op_costs, label, access_cycles)
