"""Betweenness centrality: static (Brandes) and dynamic (streaming)
algorithms with CPU, edge-parallel-GPU, and node-parallel-GPU execution
models.

Quick start::

    from repro.graph import generators
    from repro.bc import DynamicBC

    g = generators.watts_strogatz(1000, k=10, p=0.1, seed=1)
    engine = DynamicBC.from_graph(g, num_sources=64, backend="gpu-node", seed=1)
    report = engine.insert_edge(3, 977)
    print(report.simulated_seconds, engine.bc_scores[:5])
"""

from repro.bc.accuracy import kendall_tau_topk, ranking_metrics, top_k_overlap
from repro.bc.brandes import brandes_bc, single_source_state
from repro.bc.cases import (
    Case,
    SubCase,
    classify_deletion,
    classify_deletions_batch,
    classify_insertion,
    classify_insertion_detailed,
    classify_insertions_batch,
)
from repro.bc.engine import BACKENDS, BatchResult, DynamicBC, UpdateReport
from repro.bc.flood import flood_adjacent_level_update
from repro.bc.state import BCState
from repro.bc.static_gpu import StaticBCResult, static_bc_gpu
from repro.bc.tree import bc_auto, is_forest, tree_bc

__all__ = [
    "brandes_bc",
    "single_source_state",
    "BCState",
    "Case",
    "SubCase",
    "classify_insertion",
    "classify_insertion_detailed",
    "classify_insertions_batch",
    "classify_deletion",
    "classify_deletions_batch",
    "BatchResult",
    "DynamicBC",
    "UpdateReport",
    "BACKENDS",
    "static_bc_gpu",
    "StaticBCResult",
    "kendall_tau_topk",
    "ranking_metrics",
    "top_k_overlap",
    "tree_bc",
    "bc_auto",
    "is_forest",
    "flood_adjacent_level_update",
]
