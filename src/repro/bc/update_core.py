"""Per-source dynamic BC update routines (Algorithms 2–8).

The three execution strategies (sequential CPU, edge-parallel GPU,
node-parallel GPU) compute *identical state transitions* — they differ
only in how threads map to work, which the pluggable
:class:`~repro.bc.accountants.UpdateAccountant` captures.  This module
implements the transitions once, level-synchronously over NumPy
arrays, mirroring the barrier structure of the GPU kernels:

* :func:`adjacent_level_update` — Case 2 of Green et al. (insertion
  between adjacent BFS levels) and its deletion dual: distances are
  preserved; σ deltas propagate down from ``u_low``; the dependency
  pass walks a multi-level queue upward, adding new contributions and
  subtracting stale ones.
* :func:`distant_level_update` — Case 3 (insertion across >1 level,
  including component merges): a pull-based partial BFS relabels
  distances and recomputes σ in new-level order, then a *pre-pass*
  retires moved vertices' old contributions before the upward sweep
  (old values are static, so the pre-pass is order-independent; this
  resolves the level-ordering hazard when a vertex climbs several
  levels — see DESIGN.md).

Pseudocode notes: Algorithm 6 of the paper swaps the roles of ``v`` and
``w`` in its level tests relative to Algorithms 2/7 (as printed it
would accumulate dependencies downward); we implement the consistent
semantics.  Likewise, the kernels guard work on touched vertices, as
the node-parallel queues do structurally — a literal unguarded reading
of Algorithm 4 would flood the entire BFS cone below ``u_low``'s level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.bc.accountants import UpdateAccountant
from repro.graph.csr import CSRGraph

UNTOUCHED, DOWN, UP = 0, 1, 2


@dataclass
class UpdateStats:
    """Per-(source, update) observability: what the update touched.

    ``touched`` counts vertices with ``t != untouched`` (the quantity
    Fig. 4 plots as a fraction of n); ``moved`` counts vertices whose
    distance changed (Case 3 only).
    """

    touched: int = 0
    moved: int = 0
    sp_levels: int = 0
    dep_levels: int = 0


def _max_multiplicity(values: np.ndarray) -> int:
    """Worst-case atomics targeting one address in a scatter-add."""
    if values.size == 0:
        return 1
    return int(np.unique(values, return_counts=True)[1].max())


# ----------------------------------------------------------------------
# Case 2: |d(u) - d(v)| == 1  (and the distance-preserving deletion dual)
# ----------------------------------------------------------------------
def adjacent_level_update(
    graph: CSRGraph,
    source: int,
    d: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    bc: np.ndarray,
    u_high: int,
    u_low: int,
    acc: UpdateAccountant,
    insert: bool = True,
) -> UpdateStats:
    """Apply an adjacent-level edge insertion (or deletion) for one
    source, updating ``d/sigma/delta`` rows and ``bc`` in place.

    Preconditions: the graph already reflects the mutation (edge
    present for ``insert=True``, absent for ``insert=False``), and
    ``d[u_low] == d[u_high] + 1``.
    """
    n = graph.num_vertices
    if d[u_low] != d[u_high] + 1:
        raise ValueError(
            f"adjacent-level update requires d[u_low] == d[u_high]+1, "
            f"got d[{u_low}]={d[u_low]}, d[{u_high}]={d[u_high]}"
        )
    stats = UpdateStats()
    acc.init(n)
    t = np.zeros(n, dtype=np.int8)
    sigma_hat = sigma.copy()
    delta_hat = np.zeros(n, dtype=np.float64)
    sign = 1.0 if insert else -1.0
    sigma_hat[u_low] = sigma[u_low] + sign * sigma[u_high]
    t[u_low] = DOWN

    base_level = int(d[u_low])
    lvl_touched: Dict[int, List[np.ndarray]] = {
        base_level: [np.array([u_low], dtype=np.int64)]
    }
    qq_len = 1

    # Stage 2: propagate sigma deltas down the (unchanged) BFS DAG.
    frontier = np.array([u_low], dtype=np.int64)
    depth = base_level
    while frontier.size:
        stats.sp_levels += 1
        tails, heads = graph.frontier_arcs(frontier)
        on_path = d[heads] == depth + 1
        ot, oh = tails[on_path], heads[on_path]
        raw_new = oh[t[oh] == UNTOUCHED]
        if ot.size:
            np.add.at(sigma_hat, oh, sigma_hat[ot] - sigma[ot])
        new_nodes = np.unique(raw_new).astype(np.int64)
        if new_nodes.size:
            t[new_nodes] = DOWN
        acc.sp_level(
            frontier=int(frontier.size),
            arcs=int(tails.size),
            onpath=int(ot.size),
            raw_new=int(raw_new.size),
            new=int(new_nodes.size),
            max_conflict=_max_multiplicity(oh),
        )
        if new_nodes.size:
            lvl_touched.setdefault(depth + 1, []).append(new_nodes)
            qq_len += int(new_nodes.size)
        frontier = new_nodes
        depth += 1

    # Stage 3: dependency accumulation, deepest touched level first.
    max_level = max(lvl for lvl, nodes in lvl_touched.items() if nodes)
    for level in range(max_level, 0, -1):
        stats.dep_levels += 1
        parts = lvl_touched.get(level, [])
        w_arr = (
            np.unique(np.concatenate(parts)) if parts else np.empty(0, dtype=np.int64)
        )
        adds = subs = arcs = new_up_count = 0
        conflict = 1
        if w_arr.size:
            tails, heads = graph.frontier_arcs(w_arr)
            arcs = int(tails.size)
            pred = d[heads] == level - 1
            pt = tails[pred].astype(np.int64)
            ph = heads[pred].astype(np.int64)

            # Newly reached predecessors enter the queue as "up" with
            # delta_hat seeded from the old dependency (Alg. 2 line 30).
            new_up = np.unique(ph[t[ph] == UNTOUCHED])
            if new_up.size:
                t[new_up] = UP
                delta_hat[new_up] = delta[new_up]
                lvl_touched.setdefault(level - 1, []).append(new_up)
                new_up_count = int(new_up.size)
            # New contributions (Alg. 2 line 31).
            if ph.size:
                np.add.at(
                    delta_hat, ph,
                    sigma_hat[ph] / sigma_hat[pt] * (1.0 + delta_hat[pt]),
                )
                adds = int(ph.size)
                conflict = _max_multiplicity(ph)
            # Retire stale contributions of touched successors from
            # "up" predecessors (Alg. 2 lines 32-33).  Down
            # predecessors rebuild delta_hat from zero, so only "up"
            # ones carry the old value.  For an insertion the new arc
            # (u_high, u_low) had no old contribution: skip that pair.
            up_pred = t[ph] == UP
            if insert:
                up_pred &= ~((ph == u_high) & (pt == u_low))
            sp, sh = pt[up_pred], ph[up_pred]
            if sp.size:
                np.add.at(
                    delta_hat, sh, -(sigma[sh] / sigma[sp]) * (1.0 + delta[sp])
                )
                subs = int(sp.size)
        if not insert and level == base_level:
            # The removed arc was an old DAG arc but is no longer in
            # the adjacency, so its stale contribution is retired
            # explicitly (old values only: order-independent).
            if t[u_high] == UNTOUCHED:
                t[u_high] = UP
                delta_hat[u_high] = delta[u_high]
                lvl_touched.setdefault(level - 1, []).append(
                    np.array([u_high], dtype=np.int64)
                )
                new_up_count += 1
            delta_hat[u_high] -= (sigma[u_high] / sigma[u_low]) * (
                1.0 + delta[u_low]
            )
            subs += 1
        acc.dep_level(
            qq=qq_len, level_nodes=int(w_arr.size), arcs=arcs,
            adds=adds, subs=subs, new_up=new_up_count, max_conflict=conflict,
        )
        qq_len += new_up_count

    _commit(source, t, d, None, sigma, sigma_hat, delta, delta_hat, bc, acc, stats)
    return stats


# ----------------------------------------------------------------------
# Case 3: |d(u) - d(v)| > 1 (distances shrink; components may merge)
# ----------------------------------------------------------------------
def distant_level_update(
    graph: CSRGraph,
    source: int,
    d: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    bc: np.ndarray,
    u_high: int,
    u_low: int,
    acc: UpdateAccountant,
) -> UpdateStats:
    """Apply a distant-level edge insertion for one source (in place).

    Precondition: the edge ``{u_high, u_low}`` is already in the graph
    and ``d[u_low] > d[u_high] + 1`` (possibly ``DIST_INF``).
    """
    n = graph.num_vertices
    if not d[u_low] > d[u_high] + 1:
        raise ValueError("distant-level update requires d[u_low] > d[u_high] + 1")
    stats = UpdateStats()
    acc.init(n)
    t = np.zeros(n, dtype=np.int8)
    moved = np.zeros(n, dtype=bool)
    d_new = d.copy()
    sigma_hat = sigma.copy()
    delta_hat = np.zeros(n, dtype=np.float64)

    d_new[u_low] = d[u_high] + 1
    moved[u_low] = True
    t[u_low] = DOWN

    lvl_touched: Dict[int, List[np.ndarray]] = {}
    qq_len = 0

    # Stage 2': pull-based distance/sigma repair in new-level order.
    level = int(d_new[u_low])
    pending: np.ndarray = np.array([u_low], dtype=np.int64)
    pull_buf = np.zeros(n, dtype=np.float64)
    while pending.size:
        stats.sp_levels += 1
        cur = np.unique(pending)
        # Pull sigma_hat from new-level predecessors (final by level order).
        tails, heads = graph.frontier_arcs(cur)
        tails = tails.astype(np.int64)
        heads = heads.astype(np.int64)
        pred = d_new[heads] == level - 1
        pull_buf[cur] = 0.0
        if np.any(pred):
            np.add.at(pull_buf, tails[pred], sigma_hat[heads[pred]])
        sigma_hat[cur] = pull_buf[cur]
        changed = moved[cur] | (sigma_hat[cur] != sigma[cur])
        reverted = cur[~changed]
        if reverted.size:  # candidate turned out unaffected
            sigma_hat[reverted] = sigma[reverted]
            t[reverted] = UNTOUCHED
        fr = cur[changed]
        raw_new = 0
        next_pending = np.empty(0, dtype=np.int64)
        scan_arcs = 0
        if fr.size:
            lvl_touched.setdefault(level, []).append(fr)
            qq_len += int(fr.size)
            s_tails, s_heads = graph.frontier_arcs(fr)
            s_heads = s_heads.astype(np.int64)
            scan_arcs = int(s_tails.size)
            # Relabel vertices pulled closer by the new paths.
            movers = np.unique(s_heads[d_new[s_heads] > level + 1])
            if movers.size:
                d_new[movers] = level + 1
                moved[movers] = True
            # Next level's candidates: every neighbor now at level+1.
            cand_mask = d_new[s_heads] == level + 1
            raw_new = int(np.count_nonzero(cand_mask))
            next_pending = np.unique(s_heads[cand_mask])
            if next_pending.size:
                t[next_pending] = DOWN
        acc.pull_level(
            frontier=int(cur.size),
            pull_arcs=int(np.count_nonzero(pred)),
            scan_arcs=scan_arcs,
            raw_new=raw_new,
            new=int(next_pending.size),
        )
        pending = next_pending
        level += 1

    # Pre-pass: retire moved vertices' old contributions from their old
    # predecessors.  Uses only pre-update values, so it commutes with
    # the level loop below (the moved vertex may now live far above its
    # old predecessors' levels).
    movers_all = np.flatnonzero(moved).astype(np.int64)
    if movers_all.size:
        tails, heads = graph.frontier_arcs(movers_all)
        tails = tails.astype(np.int64)
        heads = heads.astype(np.int64)
        old_pred = d[heads] == d[tails] - 1  # never true for d[tails]=INF
        mask = old_pred & (t[heads] != DOWN)
        xt, xh = tails[mask], heads[mask]
        new_up = np.unique(xh[t[xh] == UNTOUCHED])
        if new_up.size:
            t[new_up] = UP
            delta_hat[new_up] = delta[new_up]
            for lvl in np.unique(d_new[new_up]):
                group = new_up[d_new[new_up] == lvl]
                lvl_touched.setdefault(int(lvl), []).append(group)
            qq_len += int(new_up.size)
        if xt.size:
            np.add.at(delta_hat, xh, -(sigma[xh] / sigma[xt]) * (1.0 + delta[xt]))
        acc.prepass(moved=int(movers_all.size), arcs=int(tails.size),
                    subs=int(xt.size))

    # Stage 3': dependency accumulation over new levels, deepest first.
    touched_levels = [lvl for lvl, nodes in lvl_touched.items() if nodes]
    max_level = max(touched_levels) if touched_levels else 0
    for level in range(max_level, 0, -1):
        stats.dep_levels += 1
        parts = lvl_touched.get(level, [])
        w_arr = (
            np.unique(np.concatenate(parts)) if parts else np.empty(0, dtype=np.int64)
        )
        adds = subs = arcs = new_up_count = 0
        conflict = 1
        if w_arr.size:
            tails, heads = graph.frontier_arcs(w_arr)
            tails = tails.astype(np.int64)
            heads = heads.astype(np.int64)
            arcs = int(tails.size)
            pred = d_new[heads] == level - 1
            pt, ph = tails[pred], heads[pred]
            new_up = np.unique(ph[t[ph] == UNTOUCHED])
            if new_up.size:
                t[new_up] = UP
                delta_hat[new_up] = delta[new_up]
                lvl_touched.setdefault(level - 1, []).append(new_up)
                new_up_count = int(new_up.size)
            if ph.size:
                np.add.at(
                    delta_hat, ph,
                    sigma_hat[ph] / sigma_hat[pt] * (1.0 + delta_hat[pt]),
                )
                adds = int(ph.size)
                conflict = _max_multiplicity(ph)
            # Stale contributions: only unmoved poppees still owe them
            # (moved ones were retired in the pre-pass), and only "up"
            # predecessors carry old values.
            old_arc = (d[heads] == d[tails] - 1) & ~moved[tails]
            sub_mask = old_arc & (t[heads] == UP)
            sp, sh = tails[sub_mask], heads[sub_mask]
            if sp.size:
                np.add.at(
                    delta_hat, sh, -(sigma[sh] / sigma[sp]) * (1.0 + delta[sp])
                )
                subs = int(sp.size)
        acc.dep_level(
            qq=qq_len, level_nodes=int(w_arr.size), arcs=arcs,
            adds=adds, subs=subs, new_up=new_up_count, max_conflict=conflict,
        )
        qq_len += new_up_count

    stats.moved = int(movers_all.size)
    _commit(source, t, d, d_new, sigma, sigma_hat, delta, delta_hat, bc, acc, stats)
    return stats


# ----------------------------------------------------------------------
def _commit(
    source: int,
    t: np.ndarray,
    d: np.ndarray,
    d_new: Optional[np.ndarray],
    sigma: np.ndarray,
    sigma_hat: np.ndarray,
    delta: np.ndarray,
    delta_hat: np.ndarray,
    bc: np.ndarray,
    acc: UpdateAccountant,
    stats: UpdateStats,
) -> None:
    """Algorithm 8: fold hat-values into the stored state and adjust BC.

    The source's own delta stays pinned at zero (it never contributes
    to any BC score) and its BC is never self-adjusted.
    """
    touched = t != UNTOUCHED
    stats.touched = int(np.count_nonzero(touched))
    apply_mask = touched.copy()
    apply_mask[source] = False
    bc[apply_mask] += delta_hat[apply_mask] - delta[apply_mask]
    sigma[:] = sigma_hat
    delta[apply_mask] = delta_hat[apply_mask]
    if d_new is not None:
        d[:] = d_new
    acc.commit(t.size, stats.touched)
