"""Per-source dynamic BC update routines (Algorithms 2–8).

The three execution strategies (sequential CPU, edge-parallel GPU,
node-parallel GPU) compute *identical state transitions* — they differ
only in how threads map to work, which the pluggable
:class:`~repro.bc.accountants.UpdateAccountant` captures.  This module
implements the transitions once, level-synchronously over NumPy
arrays, mirroring the barrier structure of the GPU kernels:

* :func:`adjacent_level_update` — Case 2 of Green et al. (insertion
  between adjacent BFS levels) and its deletion dual: distances are
  preserved; σ deltas propagate down from ``u_low``; the dependency
  pass walks a multi-level queue upward, adding new contributions and
  subtracting stale ones.
* :func:`distant_level_update` — Case 3 (insertion across >1 level,
  including component merges): a pull-based partial BFS relabels
  distances and recomputes σ in new-level order, then a *pre-pass*
  retires moved vertices' old contributions before the upward sweep
  (old values are static, so the pre-pass is order-independent; this
  resolves the level-ordering hazard when a vertex climbs several
  levels — see DESIGN.md).

Pseudocode notes: Algorithm 6 of the paper swaps the roles of ``v`` and
``w`` in its level tests relative to Algorithms 2/7 (as printed it
would accumulate dependencies downward); we implement the consistent
semantics.  Likewise, the kernels guard work on touched vertices, as
the node-parallel queues do structurally — a literal unguarded reading
of Algorithm 4 would flood the entire BFS cone below ``u_low``'s level.

Sanitizer instrumentation: each barrier-delimited phase of the real
kernels is a ``san.interval`` here, and phases a correct GPU kernel
must separate with a barrier are separate intervals — the dependency
stage splits into *dep-discover* (queue/t stamps, δ̂ seeding) and
*dep-accumulate* (the atomic adds/subs), the Case-3 pull into
*pull-clear* / *pull-accumulate* / *pull-commit* / *pull-scan*.  All
conflicting accumulation routes through the declared
:func:`~repro.gpu.primitives.atomic_scatter_add`; merging intervals or
bypassing the helper in a mutated kernel is exactly what the race
sanitizer detects (tests/test_sanitize_races.py).  The hooks are
no-ops without an active tracer and never change the math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.bc.accountants import UpdateAccountant
from repro.gpu.primitives import atomic_scatter_add
from repro.graph.csr import CSRGraph
from repro.sanitize import tracer as san

UNTOUCHED, DOWN, UP = 0, 1, 2


@dataclass
class UpdateStats:
    """Per-(source, update) observability: what the update touched.

    ``touched`` counts vertices with ``t != untouched`` (the quantity
    Fig. 4 plots as a fraction of n); ``moved`` counts vertices whose
    distance changed (Case 3 only).
    """

    touched: int = 0
    moved: int = 0
    sp_levels: int = 0
    dep_levels: int = 0


def _max_multiplicity(values: np.ndarray) -> int:
    """Worst-case atomics targeting one address in a scatter-add."""
    if values.size == 0:
        return 1
    return int(np.unique(values, return_counts=True)[1].max())


# ----------------------------------------------------------------------
# Case 2: |d(u) - d(v)| == 1  (and the distance-preserving deletion dual)
# ----------------------------------------------------------------------
def adjacent_level_update(
    graph: CSRGraph,
    source: int,
    d: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    bc: np.ndarray,
    u_high: int,
    u_low: int,
    acc: UpdateAccountant,
    insert: bool = True,
) -> UpdateStats:
    """Apply an adjacent-level edge insertion (or deletion) for one
    source, updating ``d/sigma/delta`` rows and ``bc`` in place.

    Preconditions: the graph already reflects the mutation (edge
    present for ``insert=True``, absent for ``insert=False``), and
    ``d[u_low] == d[u_high] + 1``.
    """
    n = graph.num_vertices
    if d[u_low] != d[u_high] + 1:
        raise ValueError(
            f"adjacent-level update requires d[u_low] == d[u_high]+1, "
            f"got d[{u_low}]={d[u_low]}, d[{u_high}]={d[u_high]}"
        )
    stats = UpdateStats()
    acc.init(n)
    t = np.zeros(n, dtype=np.int8)
    sigma_hat = sigma.copy()
    delta_hat = np.zeros(n, dtype=np.float64)
    sign = 1.0 if insert else -1.0

    base_level = int(d[u_low])
    label = "case2-insert" if insert else "case2-delete"
    with san.kernel(f"{label}:{source}"):
        with san.interval("init", base_level):
            sigma_hat[u_low] = sigma[u_low] + sign * sigma[u_high]
            san.write("sigma_hat", [u_low])
            t[u_low] = DOWN
            san.write("t", [u_low], intent="mark")
            san.enqueue("QQ:down", [u_low], base_level, distances=d,
                        direction=1)

        lvl_touched: Dict[int, List[np.ndarray]] = {
            base_level: [np.array([u_low], dtype=np.int64)]
        }
        qq_len = 1

        # Stage 2: propagate sigma deltas down the (unchanged) BFS DAG.
        frontier = np.array([u_low], dtype=np.int64)
        depth = base_level
        while frontier.size:
            stats.sp_levels += 1
            tails, heads = graph.frontier_arcs(frontier)
            with san.interval("sp", depth):
                san.read("d", heads)
                on_path = d[heads] == depth + 1
                ot, oh = tails[on_path], heads[on_path]
                san.read("t", oh)
                raw_new = oh[t[oh] == UNTOUCHED]
                if ot.size:
                    san.read("sigma_hat", ot)
                    san.read("sigma", ot)
                    atomic_scatter_add(
                        sigma_hat, oh, sigma_hat[ot] - sigma[ot],
                        array="sigma_hat",
                    )
                new_nodes = np.unique(raw_new).astype(np.int64)
                if new_nodes.size:
                    t[new_nodes] = DOWN
                    san.write("t", new_nodes, intent="mark")
                san.enqueue("QQ:down", new_nodes, depth + 1, distances=d,
                            direction=1)
            acc.sp_level(
                frontier=int(frontier.size),
                arcs=int(tails.size),
                onpath=int(ot.size),
                raw_new=int(raw_new.size),
                new=int(new_nodes.size),
                max_conflict=_max_multiplicity(oh),
            )
            if new_nodes.size:
                lvl_touched.setdefault(depth + 1, []).append(new_nodes)
                qq_len += int(new_nodes.size)
            frontier = new_nodes
            depth += 1

        # Stage 3: dependency accumulation, deepest touched level first.
        # Each level is two barrier intervals: *discover* stamps the
        # newly reached "up" predecessors and seeds their delta_hat
        # from the old dependency; *accumulate* runs the atomic
        # adds/subs, which read the seeds — hence the barrier.
        max_level = max(lvl for lvl, nodes in lvl_touched.items() if nodes)
        for level in range(max_level, 0, -1):
            stats.dep_levels += 1
            parts = lvl_touched.get(level, [])
            w_arr = (
                np.unique(np.concatenate(parts)) if parts
                else np.empty(0, dtype=np.int64)
            )
            adds = subs = arcs = new_up_count = 0
            conflict = 1
            pt = ph = np.empty(0, dtype=np.int64)
            with san.interval("dep-discover", level):
                if w_arr.size:
                    tails, heads = graph.frontier_arcs(w_arr)
                    arcs = int(tails.size)
                    san.read("d", heads)
                    pred = d[heads] == level - 1
                    pt = tails[pred].astype(np.int64)
                    ph = heads[pred].astype(np.int64)
                    san.read("t", ph)

                    # Newly reached predecessors enter the queue as
                    # "up" with delta_hat seeded from the old
                    # dependency (Alg. 2 line 30).
                    new_up = np.unique(ph[t[ph] == UNTOUCHED])
                    if new_up.size:
                        t[new_up] = UP
                        san.write("t", new_up, intent="mark")
                        san.read("delta", new_up)
                        delta_hat[new_up] = delta[new_up]
                        san.write("delta_hat", new_up)
                        lvl_touched.setdefault(level - 1, []).append(new_up)
                        new_up_count = int(new_up.size)
                    san.enqueue("QQ:up", new_up, level - 1, distances=d,
                                direction=-1)
                if not insert and level == base_level and t[u_high] == UNTOUCHED:
                    # The removed arc's predecessor may be reachable
                    # only through the arc that no longer exists in the
                    # adjacency; stamp and seed it explicitly.
                    t[u_high] = UP
                    san.write("t", [u_high], intent="mark")
                    san.read("delta", [u_high])
                    delta_hat[u_high] = delta[u_high]
                    san.write("delta_hat", [u_high])
                    lvl_touched.setdefault(level - 1, []).append(
                        np.array([u_high], dtype=np.int64)
                    )
                    new_up_count += 1
                    san.enqueue("QQ:up", [u_high], level - 1, distances=d,
                                direction=-1)
            with san.interval("dep-accumulate", level):
                if ph.size:
                    # New contributions (Alg. 2 line 31).
                    san.read("sigma_hat", ph)
                    san.read("sigma_hat", pt)
                    san.read("delta_hat", pt)
                    atomic_scatter_add(
                        delta_hat, ph,
                        sigma_hat[ph] / sigma_hat[pt] * (1.0 + delta_hat[pt]),
                        array="delta_hat",
                    )
                    adds = int(ph.size)
                    conflict = _max_multiplicity(ph)
                    # Retire stale contributions of touched successors
                    # from "up" predecessors (Alg. 2 lines 32-33).
                    # Down predecessors rebuild delta_hat from zero, so
                    # only "up" ones carry the old value.  For an
                    # insertion the new arc (u_high, u_low) had no old
                    # contribution: skip that pair.
                    san.read("t", ph)
                    up_pred = t[ph] == UP
                    if insert:
                        up_pred &= ~((ph == u_high) & (pt == u_low))
                    sp, sh = pt[up_pred], ph[up_pred]
                    if sp.size:
                        san.read("sigma", sh)
                        san.read("sigma", sp)
                        san.read("delta", sp)
                        atomic_scatter_add(
                            delta_hat, sh,
                            -(sigma[sh] / sigma[sp]) * (1.0 + delta[sp]),
                            array="delta_hat",
                        )
                        subs = int(sp.size)
                if not insert and level == base_level:
                    # The removed arc was an old DAG arc but is no
                    # longer in the adjacency, so its stale
                    # contribution is retired explicitly (old values
                    # only: order-independent).
                    san.read("sigma", [u_high, u_low])
                    san.read("delta", [u_low])
                    atomic_scatter_add(
                        delta_hat,
                        np.array([u_high], dtype=np.int64),
                        -(sigma[u_high] / sigma[u_low]) * (1.0 + delta[u_low]),
                        array="delta_hat",
                    )
                    subs += 1
            acc.dep_level(
                qq=qq_len, level_nodes=int(w_arr.size), arcs=arcs,
                adds=adds, subs=subs, new_up=new_up_count,
                max_conflict=conflict,
            )
            qq_len += new_up_count

    _commit(source, t, d, None, sigma, sigma_hat, delta, delta_hat, bc, acc, stats)
    return stats


# ----------------------------------------------------------------------
# Case 3: |d(u) - d(v)| > 1 (distances shrink; components may merge)
# ----------------------------------------------------------------------
def distant_level_update(
    graph: CSRGraph,
    source: int,
    d: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    bc: np.ndarray,
    u_high: int,
    u_low: int,
    acc: UpdateAccountant,
) -> UpdateStats:
    """Apply a distant-level edge insertion for one source (in place).

    Precondition: the edge ``{u_high, u_low}`` is already in the graph
    and ``d[u_low] > d[u_high] + 1`` (possibly ``DIST_INF``).
    """
    n = graph.num_vertices
    if not d[u_low] > d[u_high] + 1:
        raise ValueError("distant-level update requires d[u_low] > d[u_high] + 1")
    stats = UpdateStats()
    acc.init(n)
    t = np.zeros(n, dtype=np.int8)
    moved = np.zeros(n, dtype=bool)
    d_new = d.copy()
    sigma_hat = sigma.copy()
    delta_hat = np.zeros(n, dtype=np.float64)

    with san.kernel(f"case3:{source}"):
        level = int(d[u_high]) + 1
        with san.interval("init", level):
            d_new[u_low] = d[u_high] + 1
            san.write("d_new", [u_low], intent="relabel")
            moved[u_low] = True
            san.write("moved", [u_low], intent="mark")
            t[u_low] = DOWN
            san.write("t", [u_low], intent="mark")
            san.enqueue("Q2:pull", [u_low], level, distances=d_new,
                        direction=1)

        lvl_touched: Dict[int, List[np.ndarray]] = {}
        qq_len = 0

        # Stage 2': pull-based distance/sigma repair in new-level
        # order.  Four barrier intervals per level: clear the pull
        # buffer, atomically pull sigma_hat from the (final) previous
        # level, commit each lane's pulled value, then scan forward for
        # relabels and the next frontier.
        pending: np.ndarray = np.array([u_low], dtype=np.int64)
        pull_buf = np.zeros(n, dtype=np.float64)
        while pending.size:
            stats.sp_levels += 1
            cur = np.unique(pending)
            tails, heads = graph.frontier_arcs(cur)
            tails = tails.astype(np.int64)
            heads = heads.astype(np.int64)
            with san.interval("pull-clear", level):
                pull_buf[cur] = 0.0
                san.write("pull_buf", cur)
            with san.interval("pull-accumulate", level):
                san.read("d_new", heads)
                pred = d_new[heads] == level - 1
                if np.any(pred):
                    san.read("sigma_hat", heads[pred])
                    atomic_scatter_add(
                        pull_buf, tails[pred], sigma_hat[heads[pred]],
                        array="pull_buf",
                    )
            with san.interval("pull-commit", level):
                # Each lane owns one vertex of ``cur``: it reads its
                # own pull_buf/sigma/moved entries (lane-local, not
                # recorded) and stores its final sigma_hat once.
                sigma_hat[cur] = pull_buf[cur]
                changed = moved[cur] | (sigma_hat[cur] != sigma[cur])
                reverted = cur[~changed]
                if reverted.size:  # candidate turned out unaffected
                    sigma_hat[reverted] = sigma[reverted]
                    t[reverted] = UNTOUCHED
                    san.write("t", reverted, intent="mark")
                san.write("sigma_hat", cur)
            fr = cur[changed]
            raw_new = 0
            next_pending = np.empty(0, dtype=np.int64)
            scan_arcs = 0
            if fr.size:
                lvl_touched.setdefault(level, []).append(fr)
                qq_len += int(fr.size)
                s_tails, s_heads = graph.frontier_arcs(fr)
                s_heads = s_heads.astype(np.int64)
                scan_arcs = int(s_tails.size)
                with san.interval("pull-scan", level):
                    san.read("d_new", s_heads)
                    # Relabel vertices pulled closer by the new paths.
                    movers = np.unique(s_heads[d_new[s_heads] > level + 1])
                    if movers.size:
                        d_new[movers] = level + 1
                        san.write("d_new", movers, intent="relabel")
                        moved[movers] = True
                        san.write("moved", movers, intent="mark")
                    # Next level's candidates: every neighbor now at
                    # level+1.
                    cand_mask = d_new[s_heads] == level + 1
                    raw_new = int(np.count_nonzero(cand_mask))
                    next_pending = np.unique(s_heads[cand_mask])
                    if next_pending.size:
                        t[next_pending] = DOWN
                        san.write("t", next_pending, intent="mark")
                    san.enqueue("Q2:pull", next_pending, level + 1,
                                distances=d_new, direction=1)
            acc.pull_level(
                frontier=int(cur.size),
                pull_arcs=int(np.count_nonzero(pred)),
                scan_arcs=scan_arcs,
                raw_new=raw_new,
                new=int(next_pending.size),
            )
            pending = next_pending
            level += 1

        # Pre-pass: retire moved vertices' old contributions from their
        # old predecessors.  Uses only pre-update values, so it
        # commutes with the level loop below (the moved vertex may now
        # live far above its old predecessors' levels).  Two intervals:
        # stamping/seeding, then the atomic subtractions that read the
        # seeds.
        movers_all = np.flatnonzero(moved).astype(np.int64)
        if movers_all.size:
            tails, heads = graph.frontier_arcs(movers_all)
            tails = tails.astype(np.int64)
            heads = heads.astype(np.int64)
            xt = xh = np.empty(0, dtype=np.int64)
            with san.interval("prepass-discover", 0):
                san.read("d", heads)
                san.read("d", tails)
                san.read("t", heads)
                old_pred = d[heads] == d[tails] - 1  # never true for d[tails]=INF
                mask = old_pred & (t[heads] != DOWN)
                xt, xh = tails[mask], heads[mask]
                new_up = np.unique(xh[t[xh] == UNTOUCHED])
                if new_up.size:
                    t[new_up] = UP
                    san.write("t", new_up, intent="mark")
                    san.read("delta", new_up)
                    delta_hat[new_up] = delta[new_up]
                    san.write("delta_hat", new_up)
                    for lvl in np.unique(d_new[new_up]):
                        group = new_up[d_new[new_up] == lvl]
                        lvl_touched.setdefault(int(lvl), []).append(group)
                    qq_len += int(new_up.size)
                    # The pre-pass discovers vertices at arbitrary
                    # (new) levels — its queue is unordered.
                    san.enqueue("QQ:prepass", new_up, 0, direction=0)
            with san.interval("prepass-accumulate", 0):
                if xt.size:
                    san.read("sigma", xh)
                    san.read("sigma", xt)
                    san.read("delta", xt)
                    atomic_scatter_add(
                        delta_hat, xh,
                        -(sigma[xh] / sigma[xt]) * (1.0 + delta[xt]),
                        array="delta_hat",
                    )
            acc.prepass(moved=int(movers_all.size), arcs=int(tails.size),
                        subs=int(xt.size))

        # Stage 3': dependency accumulation over new levels, deepest
        # first (discover/accumulate intervals as in Case 2).
        touched_levels = [lvl for lvl, nodes in lvl_touched.items() if nodes]
        max_level = max(touched_levels) if touched_levels else 0
        for level in range(max_level, 0, -1):
            stats.dep_levels += 1
            parts = lvl_touched.get(level, [])
            w_arr = (
                np.unique(np.concatenate(parts)) if parts
                else np.empty(0, dtype=np.int64)
            )
            adds = subs = arcs = new_up_count = 0
            conflict = 1
            pt = ph = np.empty(0, dtype=np.int64)
            tails = heads = np.empty(0, dtype=np.int64)
            with san.interval("dep-discover", level):
                if w_arr.size:
                    tails, heads = graph.frontier_arcs(w_arr)
                    tails = tails.astype(np.int64)
                    heads = heads.astype(np.int64)
                    arcs = int(tails.size)
                    san.read("d_new", heads)
                    pred = d_new[heads] == level - 1
                    pt, ph = tails[pred], heads[pred]
                    san.read("t", ph)
                    new_up = np.unique(ph[t[ph] == UNTOUCHED])
                    if new_up.size:
                        t[new_up] = UP
                        san.write("t", new_up, intent="mark")
                        san.read("delta", new_up)
                        delta_hat[new_up] = delta[new_up]
                        san.write("delta_hat", new_up)
                        lvl_touched.setdefault(level - 1, []).append(new_up)
                        new_up_count = int(new_up.size)
                    san.enqueue("QQ:up", new_up, level - 1,
                                distances=d_new, direction=-1)
            with san.interval("dep-accumulate", level):
                if ph.size:
                    san.read("sigma_hat", ph)
                    san.read("sigma_hat", pt)
                    san.read("delta_hat", pt)
                    atomic_scatter_add(
                        delta_hat, ph,
                        sigma_hat[ph] / sigma_hat[pt] * (1.0 + delta_hat[pt]),
                        array="delta_hat",
                    )
                    adds = int(ph.size)
                    conflict = _max_multiplicity(ph)
                if w_arr.size:
                    # Stale contributions: only unmoved poppees still
                    # owe them (moved ones were retired in the
                    # pre-pass), and only "up" predecessors carry old
                    # values.
                    san.read("d", heads)
                    san.read("d", tails)
                    san.read("moved", tails)
                    san.read("t", heads)
                    old_arc = (d[heads] == d[tails] - 1) & ~moved[tails]
                    sub_mask = old_arc & (t[heads] == UP)
                    sp, sh = tails[sub_mask], heads[sub_mask]
                    if sp.size:
                        san.read("sigma", sh)
                        san.read("sigma", sp)
                        san.read("delta", sp)
                        atomic_scatter_add(
                            delta_hat, sh,
                            -(sigma[sh] / sigma[sp]) * (1.0 + delta[sp]),
                            array="delta_hat",
                        )
                        subs = int(sp.size)
            acc.dep_level(
                qq=qq_len, level_nodes=int(w_arr.size), arcs=arcs,
                adds=adds, subs=subs, new_up=new_up_count,
                max_conflict=conflict,
            )
            qq_len += new_up_count

    stats.moved = int(movers_all.size)
    _commit(source, t, d, d_new, sigma, sigma_hat, delta, delta_hat, bc, acc, stats)
    return stats


# ----------------------------------------------------------------------
def _commit(
    source: int,
    t: np.ndarray,
    d: np.ndarray,
    d_new: Optional[np.ndarray],
    sigma: np.ndarray,
    sigma_hat: np.ndarray,
    delta: np.ndarray,
    delta_hat: np.ndarray,
    bc: np.ndarray,
    acc: UpdateAccountant,
    stats: UpdateStats,
) -> None:
    """Algorithm 8: fold hat-values into the stored state and adjust BC.

    The source's own delta stays pinned at zero (it never contributes
    to any BC score) and its BC is never self-adjusted.  One thread per
    vertex: every access is lane-local except the bc adjustment, which
    is an atomic accumulation across concurrently-committing sources on
    real hardware.
    """
    touched = t != UNTOUCHED
    stats.touched = int(np.count_nonzero(touched))
    apply_mask = touched.copy()
    apply_mask[source] = False
    with san.kernel(f"commit:{source}"):
        with san.interval("commit", 0):
            bc[apply_mask] += delta_hat[apply_mask] - delta[apply_mask]
            sigma[:] = sigma_hat
            delta[apply_mask] = delta_hat[apply_mask]
            if d_new is not None:
                d[:] = d_new
            if san.active():
                san.write("bc", apply_mask, intent="accumulate")
                san.write("sigma", np.arange(t.size))
                san.write("delta", apply_mask)
                if d_new is not None:
                    san.write("d", np.arange(t.size))
    acc.commit(t.size, stats.touched)
