#!/usr/bin/env python
"""Sustained update throughput on a timestamped edge stream.

§I of the paper: "The tremendous volume of updates to social networks
and the web demands a high throughput solution that can process many
updates in a given unit time."  This example builds a Poisson arrival
stream with mixed insertions and deletions, replays it through each
execution strategy, and reports whether the analytic can keep up with
the stream's arrival rate in (simulated) real time.

Run:  python examples/streaming_throughput.py
"""

from repro.bc import DynamicBC
from repro.graph import generators
from repro.graph.stream import EdgeStream, replay
from repro.utils.tables import format_table

ARRIVAL_RATE = 2000.0  # events per second of stream time
N_EVENTS = 40

graph = generators.kronecker(11, edge_factor=8, seed=31)
print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

stream = EdgeStream.churn(graph, N_EVENTS, delete_fraction=0.25,
                          rate=ARRIVAL_RATE, seed=31)
inserts = sum(1 for e in stream if e.op == "insert")
print(f"stream: {len(stream)} events ({inserts} inserts, "
      f"{len(stream) - inserts} deletes) arriving at "
      f"{ARRIVAL_RATE:,.0f}/s over {stream.duration:.4f}s\n")

rows = []
for backend in ("cpu", "gpu-edge", "gpu-node"):
    engine = DynamicBC.from_graph(graph, num_sources=64, backend=backend,
                                  seed=31)
    result = replay(engine, stream)
    engine.verify()
    ups = result.updates_per_second
    rows.append((
        backend,
        f"{result.simulated_seconds * 1e3:.2f} ms",
        f"{ups:,.0f}/s",
        "YES" if ups >= ARRIVAL_RATE else "no",
    ))

print(format_table(
    ["Backend", "Stream cost (simulated)", "Throughput", "Keeps up?"],
    rows,
    title=f"Can each strategy sustain {ARRIVAL_RATE:,.0f} updates/s?",
))

print("\nBursts can also be processed per time window:")
engine = DynamicBC.from_graph(graph, num_sources=64, backend="gpu-node",
                              seed=31)
for start, events in stream.windows(0.005):
    reports = []
    for e in events:
        if e.op == "insert":
            reports.append(engine.insert_edge(e.u, e.v))
        else:
            reports.append(engine.delete_edge(e.u, e.v))
    cost = sum(r.simulated_seconds for r in reports)
    print(f"  window [{start:.3f}s, {start + 0.005:.3f}s): "
          f"{len(events):2d} events processed in {cost * 1e6:8.1f} us")
