#!/usr/bin/env python
"""Quickstart: dynamic betweenness centrality in a dozen lines.

Builds a small-world graph, sets up the node-parallel dynamic engine,
streams a few edge insertions, and shows that the incrementally
maintained scores match a from-scratch recomputation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bc import DynamicBC, brandes_bc
from repro.graph import generators

# 1. A graph (any CSRGraph works; see repro.graph.generators and
#    repro.graph.io for loaders).
graph = generators.watts_strogatz(2000, k=10, p=0.1, seed=42)
print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

# 2. The dynamic engine: k random sources approximate BC (paper: k=256),
#    backend picks the execution/cost model (cpu | gpu-edge | gpu-node).
engine = DynamicBC.from_graph(graph, num_sources=128, backend="gpu-node",
                              seed=42)
print(f"engine: {engine!r} on {engine.device.name}")

# 3. Stream edge insertions; each update returns a report.
rng = np.random.default_rng(7)
for u, v in graph.undirected_non_edges(rng, 5).tolist():
    report = engine.insert_edge(u, v)
    hist = report.case_histogram
    print(
        f"insert ({u:4d},{v:4d}): cases={hist}  "
        f"touched max={report.touched.max():5d}  "
        f"simulated={report.simulated_seconds * 1e3:7.3f} ms  "
        f"wall={report.wall_seconds * 1e3:6.1f} ms"
    )

# 4. Top-5 most central vertices right now.
top = np.argsort(engine.bc_scores)[::-1][:5]
print("top-5 central vertices:", top.tolist())

# 5. Trust, but verify: incremental state == scratch recomputation.
engine.verify()
print("verified: incremental state matches a full Brandes recomputation")

# 6. Deletions work too (distance-preserving ones run the Case-2 dual).
u, v = map(int, graph.edge_list()[0])
engine.delete_edge(u, v)
engine.insert_edge(u, v)
engine.verify()
print("delete+reinsert round trip verified")
