#!/usr/bin/env python
"""Power-grid contingency analysis via dynamic BC (N-1 screening).

The paper cites betweenness centrality for "contingency analysis for
power grid component failures" (Jin et al. [1]): when a transmission
line fails, flow reroutes over alternative shortest paths and the
criticality of every other component shifts.  Screening all N-1 line
outages with static recomputation is quadratic pain; with dynamic
deletion + reinsertion each contingency costs one update pair.

We model the grid as a mostly-planar mesh (a triangulation backbone
with a few long-distance ties), score each line outage by how much it
concentrates betweenness on the remaining buses, and report the most
fragile lines.

Run:  python examples/power_grid_contingency.py
"""

import numpy as np

from repro.bc import DynamicBC
from repro.graph import generators

N_BUSES = 800
N_CONTINGENCIES = 20

grid = generators.random_triangulation(N_BUSES, seed=5)
print(f"grid model: {grid.num_vertices} buses, {grid.num_edges} lines")

engine = DynamicBC.from_graph(grid, num_sources=64, backend="gpu-node",
                              seed=5)
base_scores = engine.bc_scores.copy()
base_top = int(np.argmax(base_scores))
print(f"baseline: most central bus = {base_top} "
      f"(score {base_scores[base_top]:.0f})")

rng = np.random.default_rng(17)
lines = grid.edge_list()
candidates = lines[rng.choice(len(lines), N_CONTINGENCIES, replace=False)]

results = []
total_sim = 0.0
for u, v in candidates.tolist():
    out = engine.delete_edge(u, v)          # line outage
    scores = engine.bc_scores
    # stress metric: largest centrality increase on any remaining bus
    stress = float((scores - base_scores).max())
    hotspot = int(np.argmax(scores - base_scores))
    results.append(((u, v), stress, hotspot))
    back = engine.insert_edge(u, v)         # restore service
    total_sim += out.simulated_seconds + back.simulated_seconds

engine.verify()  # the grid and analytic are back to baseline, exactly

results.sort(key=lambda r: -r[1])
print(f"\ntop-5 most fragile lines (of {N_CONTINGENCIES} screened):")
print(f"  {'line':>12s}  {'max BC increase':>16s}  {'hotspot bus':>11s}")
for (u, v), stress, hotspot in results[:5]:
    print(f"  {f'({u},{v})':>12s}  {stress:16.1f}  {hotspot:11d}")

print(f"\nscreened {N_CONTINGENCIES} contingencies in "
      f"{total_sim * 1e3:.2f} ms of simulated GPU time "
      f"({2 * N_CONTINGENCIES} dynamic updates)")
