#!/usr/bin/env python
"""Tuning the execution model: thread blocks, devices, and strategies.

Walks through the performance questions the paper answers:

1. How many thread blocks should a BC kernel launch?  (Fig. 1: one per
   SM — more saturates the bus, fewer under-occupies the machine.)
2. Edge-parallel or node-parallel for *dynamic* updates?  (Table II:
   node-parallel, by a wide margin — its work tracks the tiny touched
   sets instead of re-scanning every edge per level.)
3. How do the counters explain the gap?  (The edge strategy moves
   orders of magnitude more bytes for the same state transition.)

Run:  python examples/gpu_tuning.py
"""

import numpy as np

from repro.bc import DynamicBC, static_bc_gpu
from repro.gpu import GTX_560, TESLA_C2075
from repro.graph import generators
from repro.utils.tables import format_table

graph = generators.preferential_attachment(3000, m=5, seed=9)
print(f"workload: scale-free graph, {graph.num_vertices} vertices, "
      f"{graph.num_edges} edges\n")

# ---------------------------------------------------------------- 1 --
print("1) thread-block sweep (static BC, both paper GPUs)\n")
static = static_bc_gpu(graph, sources=range(128), strategy="gpu-edge")
rows = []
for device in (GTX_560, TESLA_C2075):
    base = static.timing(device, 1).total_seconds
    for blocks in (1, device.num_sms // 2, device.num_sms,
                   2 * device.num_sms):
        t = static.timing(device, blocks).total_seconds
        rows.append((device.name, blocks, f"{base / t:.2f}x"))
print(format_table(["Device", "Blocks", "Speedup vs 1 block"], rows))

# ---------------------------------------------------------------- 2 --
print("\n2) dynamic updates: edge- vs node-parallel vs CPU\n")
rng = np.random.default_rng(2)
new_edges = graph.undirected_non_edges(rng, 8)
rows = []
engines = {}
for backend in ("cpu", "gpu-edge", "gpu-node"):
    engine = DynamicBC.from_graph(graph, num_sources=64, backend=backend,
                                  seed=9)
    total = sum(
        engine.insert_edge(u, v).simulated_seconds
        for u, v in new_edges.tolist()
    )
    engines[backend] = engine
    rows.append((backend, engine.device.name, f"{total * 1e3:.3f} ms"))
print(format_table(["Backend", "Device", "8 updates (simulated)"], rows))

# ---------------------------------------------------------------- 3 --
print("\n3) why: hardware counters for the same state transitions\n")
rows = []
for backend, engine in engines.items():
    c = engine.counters
    rows.append((
        backend,
        f"{c.work_items:,}",
        f"{c.bytes_moved / 1e6:,.1f} MB",
        f"{c.atomic_ops:,}",
        f"{c.barriers:,}",
    ))
print(format_table(
    ["Backend", "Work items", "Memory traffic", "Atomics", "Barriers"],
    rows,
))

node = engines["gpu-node"].counters.bytes_moved
edge = engines["gpu-edge"].counters.bytes_moved
print(f"\nedge-parallel moved {edge / node:.0f}x the bytes of "
      "node-parallel for identical results — the paper's §V argument "
      "in one number.")

# ---------------------------------------------------------------- 4 --
print("\n4) where one update's time goes (per-stage breakdown)\n")
rows = []
for backend in ("cpu", "gpu-edge", "gpu-node"):
    engine = DynamicBC.from_graph(graph, num_sources=64, backend=backend,
                                  seed=9)
    u, v = graph.undirected_non_edges(np.random.default_rng(8), 1)[0]
    rep = engine.insert_edge(int(u), int(v))
    total = sum(rep.stage_seconds.values()) or 1.0
    shares = {k: f"{v / total:.0%}" for k, v in sorted(rep.stage_seconds.items())}
    rows.append((backend,
                 shares.get("init", "-"),
                 shares.get("sp", "-"),
                 shares.get("dep", "-"),
                 shares.get("commit", "-")))
print(format_table(["Backend", "init", "shortest-path", "dependency",
                    "commit"], rows))
print("\nThe O(n) init/commit kernels dominate when the touched set is "
      "tiny; the edge strategy instead burns its time re-scanning every "
      "arc per level in the two traversal stages.")
