#!/usr/bin/env python
"""Tracking influencers in a growing social network.

The paper's motivating scenario (§I): "finding influential people in
social networks" whose structure changes faster than a static analytic
can be recomputed.  We grow a co-authorship-style network one
collaboration at a time and keep the betweenness ranking current with
dynamic updates, comparing the cumulative cost against the
recompute-every-time strategy a static framework would use.

Run:  python examples/social_network_stream.py
"""

import numpy as np

from repro.bc import DynamicBC, static_bc_gpu
from repro.bc.accuracy import top_k_overlap
from repro.gpu import TESLA_C2075
from repro.graph import generators

N_UPDATES = 25
TOP_K = 10

# A co-authorship network: papers are cliques, prolific authors attract
# more collaborations (heavy tail + high clustering).
graph = generators.co_papers(1500, seed=11)
print(f"co-authorship network: {graph.num_vertices} authors, "
      f"{graph.num_edges} collaboration edges")

engine = DynamicBC.from_graph(graph, num_sources=96, backend="gpu-node",
                              seed=11)

rng = np.random.default_rng(3)
new_links = graph.undirected_non_edges(rng, N_UPDATES)

update_cost = 0.0
recompute_cost = 0.0
churn = 0
prev_top = set(np.argsort(engine.bc_scores)[::-1][:TOP_K].tolist())

for step, (u, v) in enumerate(new_links.tolist(), 1):
    report = engine.insert_edge(u, v)
    update_cost += report.simulated_seconds

    # What a static framework would pay for the same freshness:
    static = static_bc_gpu(engine.graph.snapshot(), sources=engine.sources,
                           strategy="gpu-edge")
    recompute_cost += static.timing(TESLA_C2075).total_seconds

    top = set(np.argsort(engine.bc_scores)[::-1][:TOP_K].tolist())
    if top != prev_top:
        churn += 1
        entered = sorted(top - prev_top)
        print(f"  step {step:2d}: top-{TOP_K} changed, new influencers "
              f"{entered}")
    prev_top = top

print(f"\nafter {N_UPDATES} new collaborations:")
print(f"  top-{TOP_K} ranking changed in {churn} of {N_UPDATES} updates")
print(f"  dynamic updates:      {update_cost * 1e3:9.2f} ms (simulated)")
print(f"  static recomputes:    {recompute_cost * 1e3:9.2f} ms (simulated)")
print(f"  dynamic advantage:    {recompute_cost / update_cost:8.1f}x")

# sanity: the maintained ranking equals the recomputed one
fresh = static_bc_gpu(engine.graph.snapshot(), sources=engine.sources,
                      strategy="gpu-edge").bc
overlap = top_k_overlap(engine.bc_scores, fresh, k=TOP_K)
print(f"  ranking agreement with scratch recompute: {overlap:.0%}")
