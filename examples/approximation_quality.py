#!/usr/bin/env python
"""How many source vertices does approximate BC need?

The paper approximates BC with k = 256 random sources (§II-B, after
Brandes & Pich [11]) and notes that rankings matter more than
magnitudes (§II-A).  This example sweeps k and measures how quickly the
approximate ranking converges to the exact one — and what each k costs
on the virtual GPU.

Run:  python examples/approximation_quality.py
"""

import numpy as np

from repro.bc import brandes_bc, static_bc_gpu
from repro.bc.accuracy import ranking_metrics
from repro.gpu import TESLA_C2075
from repro.graph import generators
from repro.utils.prng import sample_without_replacement
from repro.utils.tables import format_table

graph = generators.watts_strogatz(1200, k=8, p=0.05, seed=21)
n = graph.num_vertices
print(f"graph: {n} vertices, {graph.num_edges} edges")

exact = brandes_bc(graph)
rng = np.random.default_rng(4)

rows = []
for k in (8, 16, 32, 64, 128, 256, 512):
    sources = sample_without_replacement(rng, n, k)
    result = static_bc_gpu(graph, sources=sources, strategy="gpu-edge")
    approx = result.bc * (n / k)  # unbiased rescaling
    metrics = ranking_metrics(approx, exact, k=10)
    cost = result.timing(TESLA_C2075).total_seconds
    rows.append((
        k,
        f"{metrics['top_k_overlap']:.0%}",
        f"{metrics['kendall_tau_topk']:.3f}",
        f"{metrics['max_rel_error']:.3f}",
        f"{cost * 1e3:.2f} ms",
    ))

print(format_table(
    ["k sources", "top-10 found", "tau (top-10)", "max rel err",
     "GPU cost (simulated)"],
    rows,
    title="Approximation quality vs number of sources",
))

print(
    "\nTakeaway: the top-10 ranking stabilizes long before the raw "
    "scores do, which is why the paper's k=256 protocol is sound for "
    "graphs of this scale — and why the dynamic engine stores only "
    "O(kn) state instead of O(n^2)."
)
